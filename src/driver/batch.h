// The batch driver: N sessions through the phase pipeline concurrently.
//
// Parallelism is per program (one Session per job, each run by one pool
// worker); the SPM capacity sweep reuses each session's Phase I artifacts
// and re-solves only the SpmPhase per capacity. Results are written into
// pre-allocated slots indexed by (job, capacity), so the report is
// byte-for-byte identical whatever the thread count — the determinism
// contract driver_test locks in.
//
// Failure isolation: a session that fails (front-end diagnostics, a
// simulator fault, even an internal error) yields failed items for its
// capacities; every other session is unaffected.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "driver/session.h"
#include "foray/pipeline.h"
#include "util/status.h"

namespace foray::driver {

/// One program to analyze.
struct BatchJob {
  std::string name;
  std::string source;
};

struct BatchOptions {
  int threads = 1;
  /// SPM capacities (bytes) to solve the DSE for, per program.
  std::vector<uint32_t> capacities = {4096};
  /// Phase options shared by every session (with_spm is forced on).
  core::PipelineOptions pipeline;
};

/// One (program, capacity) cell of the batch grid.
struct BatchItem {
  std::string name;
  uint32_t capacity = 0;
  util::Status status;
  size_t model_refs = 0;      ///< references in the extracted model
  core::SpmReport spm;        ///< the full Phase II result
  /// Transform-replay validation of this cell's exact selection (only
  /// when the batch pipeline runs with_replay; see spm/replay.h).
  bool replay_ran = false;
  spm::ReplayReport replay;
  std::string report;         ///< describe_spm_report() text
};

struct BatchReport {
  /// Job-major, capacity-minor — the deterministic order.
  std::vector<BatchItem> items;
  /// One finished session per job, in job order (model access for
  /// downstream consumers like the cache-comparison benches).
  std::vector<std::unique_ptr<Session>> sessions;

  const BatchItem& item(size_t job, size_t capacity_index,
                        size_t n_capacities) const {
    return items[job * n_capacities + capacity_index];
  }

  /// Summary table (one row per item): name, capacity, refs, buffers,
  /// bytes used, nJ saved (exact + greedy), % of baseline.
  std::string table() const;

  /// Machine-readable form of the whole grid (`foraygen batch --json`,
  /// bench figures, external tooling): one item object per (program,
  /// capacity) cell with the selection, energy and cache-comparison
  /// numbers, plus per-program profile statistics.
  std::string to_json() const;
};

class BatchDriver {
 public:
  explicit BatchDriver(BatchOptions opts = {});

  /// Runs every job across every capacity. Blocking; thread-safe against
  /// nothing (one driver, one call at a time).
  BatchReport run(const std::vector<BatchJob>& jobs) const;

  /// The six benchsuite kernels as batch jobs, in the paper's order.
  static std::vector<BatchJob> benchsuite_jobs();

 private:
  BatchOptions opts_;
};

}  // namespace foray::driver
