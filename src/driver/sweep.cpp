#include "driver/sweep.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <ostream>
#include <sstream>
#include <utility>

#include "benchsuite/suite.h"
#include "driver/model_cache.h"
#include "spm/replay.h"
#include "staticforay/checker.h"
#include "spm/reuse.h"
#include "spm/spm_sim.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace foray::driver {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

util::Status axis_error(std::string message) {
  // A bad axis spec is the user's input, not a library bug.
  return util::Status::failure(util::ErrorCode::kInvalidInput, "sweep-spec",
                               0, std::move(message));
}

bool parse_u32(std::string_view s, uint32_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string str(s);
  const unsigned long long v = std::strtoull(str.c_str(), &end, 10);
  if (end != str.c_str() + str.size() || v == 0 || v > UINT32_MAX) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

bool is_pow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

const char* algorithm_name(Algorithm a) {
  return a == Algorithm::kGreedy ? "greedy" : "dp";
}

util::Status SweepSpec::parse_axis(std::string_view axis,
                                   std::string_view values) {
  const std::string axis_str{axis};
  if (axis == "capacity") {
    capacities.clear();
    for (auto tok : util::split(values, ',')) {
      tok = trim(tok);
      uint32_t cap = 0;
      if (!parse_u32(tok, &cap)) {
        return axis_error("bad capacity '" + std::string(tok) +
                          "' (want a positive byte count)");
      }
      capacities.push_back(cap);
    }
    if (capacities.empty()) return axis_error("empty capacity axis");
    return {};
  }
  if (axis == "energy") {
    energy_models.clear();
    for (auto tok : util::split(values, ',')) {
      tok = trim(tok);
      EnergyAxisValue v;
      v.name = std::string(tok);
      std::string err;
      if (!spm::parse_energy_model(tok, &v.model, &err)) {
        return axis_error(err);
      }
      energy_models.push_back(std::move(v));
    }
    if (energy_models.empty()) return axis_error("empty energy axis");
    return {};
  }
  if (axis == "cache") {
    caches.clear();
    for (auto tok : util::split(values, ',')) {
      tok = trim(tok);
      CacheAxisValue v;
      if (tok == "off") {
        caches.push_back(std::move(v));  // defaults are the off value
        continue;
      }
      const auto parts = util::split(tok, 'x');
      uint32_t line = 0;
      uint32_t assoc = 0;
      if (parts.size() != 2 || !parse_u32(parts[0], &line) ||
          !parse_u32(parts[1], &assoc)) {
        return axis_error("bad cache geometry '" + std::string(tok) +
                          "' (want off or LINExASSOC, e.g. 32x2)");
      }
      if (!is_pow2(line)) {
        return axis_error("cache line bytes in '" + std::string(tok) +
                          "' must be a power of two");
      }
      // Caught here so a hostile value is a named spec error, not a
      // per-point internal error after the int cast.
      if (assoc > 1024) {
        return axis_error("cache associativity in '" + std::string(tok) +
                          "' is out of range (max 1024 ways)");
      }
      v.enabled = true;
      v.line_bytes = line;
      v.assocs = {static_cast<int>(assoc)};
      v.label = std::string(tok);
      caches.push_back(std::move(v));
    }
    if (caches.empty()) return axis_error("empty cache axis");
    return {};
  }
  if (axis == "algorithm") {
    algorithms.clear();
    for (auto tok : util::split(values, ',')) {
      tok = trim(tok);
      if (tok == "dp" || tok == "exact") {
        algorithms.push_back(Algorithm::kExactDp);
      } else if (tok == "greedy") {
        algorithms.push_back(Algorithm::kGreedy);
      } else {
        return axis_error("bad algorithm '" + std::string(tok) +
                          "' (want dp or greedy)");
      }
    }
    if (algorithms.empty()) return axis_error("empty algorithm axis");
    return {};
  }
  if (axis == "replay") {
    replays.clear();
    for (auto tok : util::split(values, ',')) {
      tok = trim(tok);
      if (tok == "on" || tok == "true") {
        replays.push_back(true);
      } else if (tok == "off" || tok == "false") {
        replays.push_back(false);
      } else {
        return axis_error("bad replay value '" + std::string(tok) +
                          "' (want on or off)");
      }
    }
    if (replays.empty()) return axis_error("empty replay axis");
    return {};
  }
  return axis_error("unknown sweep axis '" + axis_str +
                    "' (axes: capacity energy cache algorithm replay)");
}

util::Status SweepSpec::parse_file(std::string_view text) {
  int line_no = 0;
  for (auto line : util::split(text, '\n')) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return util::Status::failure(
          util::ErrorCode::kInvalidInput, "sweep-spec", line_no,
          "expected axis = value,... in '" + std::string(line) + "'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view values = trim(line.substr(eq + 1));
    util::Status st = parse_axis(key, values);
    if (!st.ok()) {
      return util::Status::failure(st.code(), "sweep-spec", line_no,
                                   st.diags().all().front().message);
    }
  }
  return {};
}

core::SpmPhaseOptions SweepPoint::spm_options(
    const core::SpmPhaseOptions& base) const {
  core::SpmPhaseOptions opts = base;
  opts.dse.spm_capacity = capacity_bytes;
  opts.dse.energy = energy;
  opts.compare_cache = cache.enabled;
  if (cache.enabled) {
    opts.cache_line_bytes = cache.line_bytes;
    opts.cache_assocs = cache.assocs;
  }
  return opts;
}

SweepGrid SweepGrid::expand(const SweepSpec& spec,
                            const core::PipelineOptions& base) {
  SweepGrid grid;
  grid.capacities = spec.capacities;
  if (grid.capacities.empty()) {
    grid.capacities.push_back(base.spm.dse.spm_capacity);
  }
  grid.energy_models = spec.energy_models;
  if (grid.energy_models.empty()) {
    // Label the inherited model honestly: "default" only when it really
    // is the default preset, "base" when the caller customized it.
    const spm::EnergyModel& e = base.spm.dse.energy;
    const spm::EnergyModel d;
    const bool is_default =
        e.dram_nj == d.dram_nj && e.spm_1kb_nj == d.spm_1kb_nj &&
        e.spm_doubling_nj == d.spm_doubling_nj &&
        e.cache_overhead == d.cache_overhead &&
        e.cache_way_overhead == d.cache_way_overhead;
    grid.energy_models.push_back({is_default ? "default" : "base", e});
  }
  grid.caches = spec.caches;
  if (grid.caches.empty()) {
    // Inherit the base cache-comparison settings wholesale (possibly
    // several associativities in one point) so pre-sweep callers like
    // `--compare-cache` and the batch adapter behave unchanged.
    CacheAxisValue v;
    v.enabled = base.spm.compare_cache;
    v.line_bytes = base.spm.cache_line_bytes;
    v.assocs = base.spm.cache_assocs;
    v.label = v.enabled ? "base" : "off";
    grid.caches.push_back(std::move(v));
  }
  grid.algorithms = spec.algorithms;
  if (grid.algorithms.empty()) {
    grid.algorithms.push_back(Algorithm::kExactDp);
  }
  grid.replays = spec.replays;
  if (grid.replays.empty()) grid.replays.push_back(base.with_replay);

  for (size_t cap = 0; cap < grid.capacities.size(); ++cap) {
    for (size_t e = 0; e < grid.energy_models.size(); ++e) {
      for (size_t c = 0; c < grid.caches.size(); ++c) {
        for (size_t a = 0; a < grid.algorithms.size(); ++a) {
          for (size_t r = 0; r < grid.replays.size(); ++r) {
            SweepPoint p;
            p.key = PointKey{0, cap, e, c, a, r};
            p.capacity_bytes = grid.capacities[cap];
            p.energy_name = grid.energy_models[e].name;
            p.energy = grid.energy_models[e].model;
            p.cache = grid.caches[c];
            p.algorithm = grid.algorithms[a];
            p.replay = grid.replays[r];
            grid.points.push_back(std::move(p));
          }
        }
      }
    }
  }
  return grid;
}

size_t SweepGrid::flat_index(const PointKey& key) const {
  FORAY_CHECK(key.capacity < capacities.size(),
              "PointKey capacity index out of range");
  FORAY_CHECK(key.energy < energy_models.size(),
              "PointKey energy index out of range");
  FORAY_CHECK(key.cache < caches.size(),
              "PointKey cache index out of range");
  FORAY_CHECK(key.algorithm < algorithms.size(),
              "PointKey algorithm index out of range");
  FORAY_CHECK(key.replay < replays.size(),
              "PointKey replay index out of range");
  return (((key.capacity * energy_models.size() + key.energy) *
               caches.size() +
           key.cache) *
              algorithms.size() +
          key.algorithm) *
             replays.size() +
         key.replay;
}

// -- per-job execution --------------------------------------------------------

namespace {

/// One Phase II solve's worth of output, produced by a pure point solve
/// (core::solve_spm + optional replay) with no shared mutable state —
/// what lets grid points of one job run on different workers.
struct PointSolve {
  util::Status status;  ///< ok unless the solve threw or replay errored
  core::SpmReport spm;
  bool replay_ran = false;
  spm::ReplayReport replay;
};

PointSolve solve_point(const core::ForayModel& model,
                       const core::PipelineOptions& base,
                       const SweepPoint& point,
                       const std::vector<spm::BufferCandidate>& candidates) {
  PointSolve out;
  // Fault site "spm.solve": the Phase II solver dies mid-point. param=0
  // injects an internal error (never retried); any nonzero param injects
  // a *transient* io_error, which is how the fault harness exercises the
  // bounded-retry path.
  if (util::fault::enabled()) {
    const util::fault::Hit h = util::fault::hit("spm.solve");
    if (h.fired) {
      out.status = util::Status::failure(
          h.param != 0 ? util::ErrorCode::kIoError
                       : util::ErrorCode::kInternal,
          "spm-solve", 0, "injected Phase II solver failure");
      return out;
    }
  }
  // Keep the failure-isolation promise even for internal errors during a
  // point solve: mark this solve's items, keep the sweep.
  try {
    const core::SpmPhaseOptions popts = point.spm_options(base.spm);
    out.spm = core::solve_spm(model, popts, &candidates);
    if (point.replay) {
      // The replay check is per-selection (see spm_replay_phase); a
      // failure to *execute* the transformed program fails the point,
      // counter mismatches land in out.replay.mismatches.
      spm::ReplayOptions ropts;
      ropts.run = base.run;
      ropts.dse = popts.dse;
      out.replay = spm::replay_selection(model, out.spm.exact, ropts);
      out.replay_ran = true;
      if (!out.replay.status.ok()) out.status = out.replay.status;
    }
  } catch (const util::StatusError& e) {
    out.status = e.status();
  } catch (const std::bad_alloc&) {
    out.status =
        util::Status::failure(util::ErrorCode::kResourceExhausted,
                              "spm-solve", 0, "out of memory during solve");
  } catch (const std::exception& e) {
    out.status = util::Status::failure("internal", 0, e.what());
  }
  return out;
}

/// True for the failure classes worth retrying: only io_error — the
/// outside world hiccuped. Everything else is deterministic and would
/// just fail the same way again.
bool transient(const util::Status& st) {
  return !st.ok() && st.code() == util::ErrorCode::kIoError;
}

PointSolve solve_point_with_retry(
    const core::ForayModel& model, const core::PipelineOptions& base,
    const SweepPoint& point,
    const std::vector<spm::BufferCandidate>& candidates, int retries) {
  PointSolve out = solve_point(model, base, point, candidates);
  for (int r = 0; r < retries && transient(out.status); ++r) {
    out = solve_point(model, base, point, candidates);
  }
  return out;
}

/// One contiguous run of grid points sharing a Phase II solve: identical
/// (capacity, energy, cache) coordinates and replay flag — the algorithm
/// axis only relabels which selection is the headline. Grid expansion
/// puts those axes innermost, so these runs are exactly the re-solves
/// the sequential driver used to skip; here each group is one pool task.
struct SolveGroup {
  size_t begin = 0;
  size_t end = 0;  ///< one past the last point of the group
};

std::vector<SolveGroup> solve_groups(const SweepGrid& grid) {
  std::vector<SolveGroup> groups;
  for (size_t i = 0; i < grid.points.size(); ++i) {
    const SweepPoint& p = grid.points[i];
    if (!groups.empty()) {
      const SweepPoint& head = grid.points[groups.back().begin];
      if (head.key.capacity == p.key.capacity &&
          head.key.energy == p.key.energy &&
          head.key.cache == p.key.cache && head.replay == p.replay) {
        groups.back().end = i + 1;
        continue;
      }
    }
    groups.push_back(SolveGroup{i, i + 1});
  }
  return groups;
}

/// Phase I state of one job, shared read-only by its solve groups.
struct JobState {
  std::unique_ptr<Session> session;
  bool phase1_ok = false;
  /// Buffer candidates, enumerated ONCE per job: they depend only on the
  /// model and the reuse filter, never on the swept axes, so every grid
  /// point reuses this list instead of re-enumerating per solve.
  std::vector<spm::BufferCandidate> candidates;
  /// Solve groups still outstanding; the worker that finishes the last
  /// one finalizes the job.
  std::atomic<size_t> remaining{0};
};

void run_phase1(const SweepJob& job, const SweepOptions& opts,
                const SweepGrid& grid, JobState* js) {
  SessionOptions sopts;
  sopts.pipeline = opts.pipeline;
  sopts.pipeline.with_spm = true;
  const SweepPoint& first = grid.points.front();
  sopts.pipeline.spm = first.spm_options(opts.pipeline.spm);
  sopts.pipeline.with_replay = first.replay;

  // Model-cache fast path: a hit makes this job pure Phase II. The
  // candidates are re-enumerated from the cached model (they depend only
  // on the model and the reuse filter), and group_task sees spm_ran ==
  // false, so every solve group takes the ordinary solve_point path —
  // which is what makes warm output byte-identical to cold.
  std::string cache_key;
  if (opts.model_cache != nullptr) {
    cache_key = ModelCache::key(job.source, opts.pipeline);
    core::ForayModel cached;
    util::Status why;
    if (opts.model_cache->lookup(cache_key, &cached, &why)) {
      try {
        auto session = std::make_unique<Session>(job.name, job.source, sopts);
        std::vector<spm::BufferCandidate> candidates =
            spm::enumerate_candidates(cached, opts.pipeline.spm.reuse);
        session->adopt_model(std::move(cached));
        js->session = std::move(session);
        js->candidates = std::move(candidates);
        js->phase1_ok = true;
        return;
      } catch (const std::exception&) {
        // A well-formed entry whose *content* lies (enumeration died on
        // it) is treated exactly like a corrupt one: recompute below,
        // store() overwrites it.
        js->session = nullptr;
        js->candidates.clear();
      }
    } else if (!why.ok()) {
      std::fprintf(stderr, "foraygen: model cache: %s; recomputing\n",
                   why.message().c_str());
    }
  }

  js->session = std::make_unique<Session>(job.name, job.source, sopts);
  js->session->run();
  // Transient (io_error) Phase I failures get a bounded number of fresh
  // sessions; deterministic failures (a program that does not parse, a
  // tripped budget) would only reproduce and are final immediately.
  for (int r = 0;
       r < opts.transient_retries && transient(js->session->status()); ++r) {
    js->session = std::make_unique<Session>(job.name, job.source, sopts);
    js->session->run();
  }
  // Phase I failures doom every grid cell; Phase II failures (including
  // replay execution errors) are per-point, so later cells still get
  // their own attempt.
  js->phase1_ok = js->session->result().model_built;
  if (!js->phase1_ok) return;
  const core::PipelineResult& res = js->session->result();
  try {
    if (res.spm_ran) {
      // run() above already enumerated for point 0 under the same reuse
      // filter (spm_options never touches it); steal the list.
      js->candidates = res.spm.candidates;
    } else {
      js->candidates =
          spm::enumerate_candidates(res.model, opts.pipeline.spm.reuse);
    }
  } catch (const std::exception&) {
    // Only reachable when run() already failed between Extract and
    // SpmPhase; the session status carries that failure to every item.
    js->phase1_ok = false;
  }
  if (js->phase1_ok && opts.model_cache != nullptr) {
    // Best-effort: a failed store only costs the next run a recompute.
    opts.model_cache->store(cache_key, res.model);
  }
}

/// Builds the SweepItem for grid point `i` from its group's solve.
/// `solve == nullptr` means Phase I failed and the session status is the
/// item's outcome. `retain_full` gates what only the buffered report
/// reads (the describe_spm_report text and the SpmReport's candidates
/// vector); the streaming path skips both.
SweepItem build_item(const SweepJob& job, size_t job_index,
                     const SweepGrid& grid, size_t i, const JobState& js,
                     const PointSolve* solve,
                     const core::SpmPhaseOptions& base_spm,
                     bool retain_full) {
  const SweepPoint& point = grid.points[i];
  SweepItem item;
  item.program = job.name;
  item.key = point.key;
  item.key.job = job_index;
  item.point = point;
  item.status = js.session->status();
  if (solve == nullptr) return item;
  item.status = solve->status;
  if (!item.status.ok()) return item;
  const core::ForayModel& model = js.session->result().model;
  item.model_refs = model.refs.size();
  item.candidate_count = solve->spm.candidates.size();
  if (retain_full) {
    item.spm = solve->spm;
  } else {
    // Streaming: the candidates vector is the bulk of an SpmReport and
    // the NDJSON renderer never reads it.
    item.spm.capacity = solve->spm.capacity;
    item.spm.exact = solve->spm.exact;
    item.spm.greedy = solve->spm.greedy;
    item.spm.baseline = solve->spm.baseline;
    item.spm.with_spm = solve->spm.with_spm;
    item.spm.caches = solve->spm.caches;
  }
  item.energy = point.algorithm == Algorithm::kGreedy
                    ? spm::evaluate_selection(
                          model, solve->spm.greedy,
                          point.spm_options(base_spm).dse)
                    : solve->spm.with_spm;
  item.replay_ran = solve->replay_ran;
  if (item.replay_ran) item.replay = solve->replay;
  if (retain_full) {
    item.report = core::describe_spm_report(solve->spm, model);
    if (solve->replay_ran) {
      item.report += spm::describe_replay_report(solve->replay, model);
    }
  }
  return item;
}

/// Pre-Phase-I static check for SweepOptions::lint_first: a kInvalidInput
/// status (phase "lint") naming the first proven fault when the checker
/// *proves* the program faults, ok for anything else. Frontend failures
/// deliberately pass — Phase I classifies those itself, keeping linted
/// and unlinted runs byte-identical on them.
util::Status lint_job(const SweepJob& job) {
  staticforay::CheckReport rep;
  const util::Status st = staticforay::lint_source(job.source, &rep);
  if (!st.ok() || !rep.must_fault()) return util::Status();
  std::string msg = job.name + ": static checker proves a fault";
  for (const auto& d : rep.diags) {
    if (d.severity != staticforay::Severity::MustFault) continue;
    msg += ": " + std::string(staticforay::check_kind_name(d.kind)) +
           " at line " + std::to_string(d.line) + ": " + d.message;
    break;
  }
  return util::Status::failure(util::ErrorCode::kInvalidInput, "lint", 0,
                               std::move(msg));
}

/// The streaming NDJSON row for a lint-refused program: one structured
/// error line standing in for the job's whole point block.
std::string lint_line(const std::string& program, const util::Status& st) {
  util::JsonWriter w;
  w.begin_object();
  w.key("kind").value("lint");
  w.key("program").value(program);
  w.key("ok").value(false);
  w.key("error_class").value(st.code_name());
  w.key("phase").value(st.phase());
  w.key("error").value(st.message());
  w.end_object();
  return w.take();
}

/// What --resume already has, projected onto the grid: per job, which
/// flat points carry cached results and therefore must not be re-run or
/// re-delivered through on_item.
struct ResumePlan {
  const SweepCheckpoint* checkpoint = nullptr;
  size_t per_job = 0;

  bool point_cached(size_t j, size_t i) const {
    return checkpoint != nullptr && checkpoint->point_cached(j, i);
  }
  bool job_fully_cached(size_t j) const {
    return checkpoint != nullptr &&
           checkpoint->job_fully_cached(j, per_job);
  }
  bool group_fully_cached(size_t j, const SolveGroup& g) const {
    for (size_t i = g.begin; i < g.end; ++i) {
      if (!point_cached(j, i)) return false;
    }
    return true;
  }
};

/// The shared execution core: Phase I per job, then the job's solve
/// groups fanned across the same pool — a single-program sweep saturates
/// every worker with grid points instead of serializing on one. Workers
/// submit their groups as they finish Phase I, so jobs and points
/// interleave freely; ThreadPool::wait_idle accounts for worker-submitted
/// tasks, making wait() a complete barrier.
///
/// `on_item(job, item, flat_index)` must be safe for concurrent calls on
/// distinct (job, point) slots; `on_job_done(job, session)` runs exactly
/// once per job, on whichever worker finishes the job's last group, after
/// all of the job's items have been delivered. Under a resume plan,
/// cached points are skipped (no on_item call) and a fully-cached job
/// skips Phase I entirely — its on_job_done receives a null session.
/// Under lint_first, a program the checker proves faulty gets exactly one
/// `on_lint(job, status)` call and nothing else — the lint hook IS that
/// job's completion; neither on_item nor on_job_done runs for it.
template <typename OnItem, typename OnLint, typename OnJobDone>
class SweepExec {
 public:
  SweepExec(const std::vector<SweepJob>& jobs, const SweepOptions& opts,
            const SweepGrid& grid, bool retain_full, ResumePlan plan,
            OnItem on_item, OnLint on_lint, OnJobDone on_job_done)
      : jobs_(jobs),
        opts_(opts),
        grid_(grid),
        retain_full_(retain_full),
        plan_(plan),
        on_item_(std::move(on_item)),
        on_lint_(std::move(on_lint)),
        on_job_done_(std::move(on_job_done)),
        groups_(solve_groups(grid)),
        pool_(static_cast<size_t>(opts.threads)) {
    states_.reserve(jobs_.size());
    for (size_t j = 0; j < jobs_.size(); ++j) {
      states_.push_back(std::make_unique<JobState>());
    }
    for (size_t j = 0; j < jobs_.size(); ++j) {
      pool_.submit([this, j] { job_task(j); });
    }
  }

  /// Blocks until every job and solve group has run.
  void wait() { pool_.wait_idle(); }

 private:
  void job_task(size_t j) {
    JobState& js = *states_[j];
    if (plan_.job_fully_cached(j)) {
      // Every point of this job rides in from the checkpoint: no Phase I,
      // no solves, no items — just the job-completion hook.
      on_job_done_(j, nullptr);
      return;
    }
    if (opts_.lint_first) {
      const util::Status lint = lint_job(jobs_[j]);
      if (!lint.ok()) {
        on_lint_(j, lint);
        return;
      }
    }
    run_phase1(jobs_[j], opts_, grid_, &js);
    if (!js.phase1_ok) {
      for (size_t i = 0; i < grid_.points.size(); ++i) {
        if (plan_.point_cached(j, i)) continue;
        on_item_(j,
                 build_item(jobs_[j], j, grid_, i, js, nullptr,
                            opts_.pipeline.spm, retain_full_),
                 i);
      }
      on_job_done_(j, std::move(js.session));
      return;
    }
    size_t needed = 0;
    for (const SolveGroup& g : groups_) {
      if (!plan_.group_fully_cached(j, g)) ++needed;
    }
    js.remaining.store(needed, std::memory_order_relaxed);
    for (size_t g = 0; g < groups_.size(); ++g) {
      if (plan_.group_fully_cached(j, groups_[g])) continue;
      pool_.submit([this, j, g] { group_task(j, groups_[g]); });
    }
  }

  void group_task(size_t j, const SolveGroup& g) {
    JobState& js = *states_[j];
    const core::PipelineResult& res = js.session->result();
    PointSolve solve;
    if (g.begin == 0 && res.spm_ran) {
      // run_phase1's session->run() already solved point 0's
      // configuration; reuse it instead of re-running the DSE.
      solve.status = js.session->status();
      solve.spm = res.spm;
      solve.replay_ran = res.replay_ran;
      if (solve.replay_ran) solve.replay = res.replay;
    } else {
      solve = solve_point_with_retry(res.model, opts_.pipeline,
                                     grid_.points[g.begin], js.candidates,
                                     opts_.transient_retries);
    }
    for (size_t i = g.begin; i < g.end; ++i) {
      if (plan_.point_cached(j, i)) continue;
      on_item_(j,
               build_item(jobs_[j], j, grid_, i, js, &solve,
                          opts_.pipeline.spm, retain_full_),
               i);
    }
    if (js.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      on_job_done_(j, std::move(js.session));
    }
  }

  const std::vector<SweepJob>& jobs_;
  const SweepOptions& opts_;
  const SweepGrid& grid_;
  const bool retain_full_;
  const ResumePlan plan_;
  OnItem on_item_;
  OnLint on_lint_;
  OnJobDone on_job_done_;
  std::vector<std::unique_ptr<JobState>> states_;
  const std::vector<SolveGroup> groups_;
  util::ThreadPool pool_;  ///< last member: joined before state dies
};

// -- NDJSON rendering ---------------------------------------------------------
// One helper per line kind; both the buffered report and the streaming
// driver call exactly these, which is what makes their outputs
// byte-identical.

void append_key(util::JsonWriter& w, const PointKey& key) {
  w.begin_object();
  w.key("job").value(static_cast<uint64_t>(key.job));
  w.key("capacity").value(static_cast<uint64_t>(key.capacity));
  w.key("energy").value(static_cast<uint64_t>(key.energy));
  w.key("cache").value(static_cast<uint64_t>(key.cache));
  w.key("algorithm").value(static_cast<uint64_t>(key.algorithm));
  w.key("replay").value(static_cast<uint64_t>(key.replay));
  w.end_object();
}

std::string header_line(const SweepGrid& grid,
                        const std::vector<std::string>& programs) {
  util::JsonWriter w;
  w.begin_object();
  w.key("kind").value("sweep");
  w.key("programs").begin_array();
  for (const auto& p : programs) w.value(p);
  w.end_array();
  w.key("axes").begin_object();
  w.key("capacity_bytes").begin_array();
  for (uint32_t c : grid.capacities) w.value(c);
  w.end_array();
  w.key("energy").begin_array();
  for (const auto& e : grid.energy_models) w.value(e.name);
  w.end_array();
  w.key("cache").begin_array();
  for (const auto& c : grid.caches) w.value(c.label);
  w.end_array();
  w.key("algorithm").begin_array();
  for (Algorithm a : grid.algorithms) w.value(algorithm_name(a));
  w.end_array();
  w.key("replay").begin_array();
  for (bool r : grid.replays) w.value(r);
  w.end_array();
  w.end_object();
  w.key("points_per_program")
      .value(static_cast<uint64_t>(grid.points_per_job()));
  w.end_object();
  return w.take();
}

std::string point_line(const SweepItem& item) {
  util::JsonWriter w;
  w.begin_object();
  w.key("kind").value("point");
  w.key("program").value(item.program);
  w.key("key");
  append_key(w, item.key);
  w.key("capacity_bytes").value(item.point.capacity_bytes);
  w.key("energy").value(item.point.energy_name);
  w.key("cache").value(item.point.cache.label);
  w.key("algorithm").value(algorithm_name(item.point.algorithm));
  w.key("replay").value(item.point.replay);
  w.key("ok").value(item.status.ok());
  if (!item.status.ok()) {
    // Structured error row: the class and phase are what a consumer
    // (retry policy, service dashboard, --resume) keys on; the message
    // stays free-form.
    w.key("error_class").value(item.status.code_name());
    w.key("phase").value(item.status.phase());
    w.key("error").value(item.status.message());
    w.end_object();
    return w.take();
  }
  w.key("model_refs").value(static_cast<uint64_t>(item.model_refs));
  w.key("candidates").value(static_cast<uint64_t>(item.candidate_count));
  const spm::Selection& sel = item.selection();
  w.key("buffers_chosen").value(static_cast<uint64_t>(sel.chosen.size()));
  w.key("bytes_used").value(sel.bytes_used);
  w.key("saved_nj").value(sel.saved_nj);
  w.key("exact_saved_nj").value(item.spm.exact.saved_nj);
  w.key("greedy_saved_nj").value(item.spm.greedy.saved_nj);
  w.key("baseline_nj").value(item.energy.baseline_nj);
  w.key("total_nj").value(item.energy.total_nj);
  w.key("savings_pct").value(item.energy.savings_pct());
  w.key("spm_accesses").value(item.energy.spm_accesses);
  w.key("dram_accesses").value(item.energy.dram_accesses);
  w.key("transfer_words").value(item.energy.transfer_words);
  if (!item.spm.caches.empty()) {
    w.key("caches").begin_array();
    for (const auto& c : item.spm.caches) {
      w.begin_object();
      w.key("line_bytes").value(item.point.cache.line_bytes);
      w.key("assoc").value(c.assoc);
      w.key("hits").value(c.hits);
      w.key("misses").value(c.misses);
      w.key("energy_nj").value(c.energy_nj);
      w.end_object();
    }
    w.end_array();
  }
  if (item.replay_ran) {
    const auto& r = item.replay;
    w.key("replay_check").begin_object();
    w.key("ok").value(r.matches());
    w.key("rectangular").value(r.rectangular);
    w.key("sim_spm_accesses").value(r.sim_spm_accesses);
    w.key("sim_main_accesses").value(r.sim_main_accesses);
    w.key("sim_transfer_words").value(r.sim_transfer_words);
    w.key("analytic_spm_accesses").value(r.ana_spm_accesses);
    w.key("analytic_main_accesses").value(r.ana_main_accesses);
    w.key("analytic_transfer_words").value(r.ana_transfer_words);
    if (!r.mismatches.empty()) {
      w.key("mismatches").begin_array();
      for (const auto& m : r.mismatches) w.value(m);
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  return w.take();
}

std::string pareto_line(std::string_view scope, std::string_view program,
                        const std::vector<ParetoPoint>& points) {
  util::JsonWriter w;
  w.begin_object();
  w.key("kind").value("pareto");
  w.key("scope").value(scope);
  if (!program.empty()) w.key("program").value(program);
  w.key("points").begin_array();
  for (const auto& p : points) {
    w.begin_object();
    w.key("key");
    append_key(w, p.key);
    w.key("bytes_used").value(p.bytes_used);
    w.key("saved_nj").value(p.saved_nj);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

// -- Pareto extraction --------------------------------------------------------

struct Objective {
  size_t flat = 0;  ///< grid point index
  uint64_t bytes = 0;
  double saved = 0.0;
};

/// Non-dominated subset: maximize saved, minimize bytes. Sorted by bytes
/// ascending; ties and duplicates resolve to the first point in grid
/// order, so the frontier is deterministic.
std::vector<Objective> frontier(std::vector<Objective> pts) {
  std::sort(pts.begin(), pts.end(), [](const Objective& a,
                                       const Objective& b) {
    if (a.bytes != b.bytes) return a.bytes < b.bytes;
    if (a.saved != b.saved) return a.saved > b.saved;
    return a.flat < b.flat;
  });
  std::vector<Objective> front;
  double best = -1.0;
  for (const auto& p : pts) {
    if (p.saved > best) {
      front.push_back(p);
      best = p.saved;
    }
  }
  return front;
}

std::vector<ParetoPoint> to_pareto_points(const SweepGrid& grid,
                                          size_t job,
                                          std::vector<Objective> objs) {
  std::vector<ParetoPoint> out;
  for (const auto& o : frontier(std::move(objs))) {
    ParetoPoint p;
    p.key = grid.points[o.flat].key;
    p.key.job = job;
    p.bytes_used = o.bytes;
    p.saved_nj = o.saved;
    out.push_back(p);
  }
  return out;
}

/// Per-job frontier over the job's successful items (items must be the
/// job's grid-ordered block).
std::vector<ParetoPoint> job_pareto(const SweepGrid& grid, size_t job,
                                    const SweepItem* items) {
  std::vector<Objective> objs;
  for (size_t i = 0; i < grid.points.size(); ++i) {
    const SweepItem& item = items[i];
    if (!item.status.ok()) continue;
    objs.push_back(Objective{i, item.selection().bytes_used,
                             item.selection().saved_nj});
  }
  return to_pareto_points(grid, job, std::move(objs));
}

/// Per-grid-point accumulator for the aggregate frontier.
struct AggCell {
  bool all_ok = true;
  size_t jobs_seen = 0;
  uint64_t bytes = 0;
  double saved = 0.0;
};

void accumulate_aggregate(std::vector<AggCell>& agg, const SweepGrid& grid,
                          const SweepItem* items) {
  for (size_t i = 0; i < grid.points.size(); ++i) {
    AggCell& cell = agg[i];
    ++cell.jobs_seen;
    const SweepItem& item = items[i];
    if (!item.status.ok()) {
      cell.all_ok = false;
      continue;
    }
    cell.bytes += item.selection().bytes_used;
    cell.saved += item.selection().saved_nj;
  }
}

std::vector<ParetoPoint> aggregate_pareto(const SweepGrid& grid,
                                          const std::vector<AggCell>& agg) {
  std::vector<Objective> objs;
  for (size_t i = 0; i < grid.points.size(); ++i) {
    if (!agg[i].all_ok || agg[i].jobs_seen == 0) continue;
    objs.push_back(Objective{i, agg[i].bytes, agg[i].saved});
  }
  return to_pareto_points(grid, 0, std::move(objs));
}

}  // namespace

// -- report -------------------------------------------------------------------

const SweepItem& SweepReport::at(const PointKey& key) const {
  FORAY_CHECK(key.job < programs.size(), "PointKey job index out of range");
  const size_t idx =
      key.job * grid.points_per_job() + grid.flat_index(key);
  FORAY_CHECK(idx < items.size(), "sweep grid index out of range");
  return items[idx];
}

std::vector<ParetoPoint> SweepReport::pareto(size_t job) const {
  FORAY_CHECK(job < programs.size(), "pareto job index out of range");
  return job_pareto(grid, job, &items[job * grid.points_per_job()]);
}

std::vector<ParetoPoint> SweepReport::pareto_aggregate() const {
  std::vector<AggCell> agg(grid.points_per_job());
  for (size_t j = 0; j < programs.size(); ++j) {
    accumulate_aggregate(agg, grid, &items[j * grid.points_per_job()]);
  }
  return aggregate_pareto(grid, agg);
}

std::string SweepReport::table() const {
  util::TablePrinter tp({"program", "SPM", "energy", "cache", "algo",
                         "refs", "buffers", "bytes used", "saved nJ",
                         "energy vs DRAM", "replay"});
  for (const auto& item : items) {
    const std::string cap = std::to_string(item.point.capacity_bytes) + "B";
    if (!item.status.ok()) {
      tp.add_row({item.program, cap, item.point.energy_name,
                  item.point.cache.label,
                  algorithm_name(item.point.algorithm), "-", "-", "-", "-",
                  "FAILED", "-"});
      continue;
    }
    const spm::Selection& sel = item.selection();
    char saved[32], pct[32];
    std::snprintf(saved, sizeof saved, "%.1f", sel.saved_nj);
    std::snprintf(pct, sizeof pct, "%.1f%%",
                  item.energy.baseline_nj > 0.0
                      ? 100.0 * item.energy.total_nj /
                            item.energy.baseline_nj
                      : 100.0);
    tp.add_row({item.program, cap, item.point.energy_name,
                item.point.cache.label,
                algorithm_name(item.point.algorithm),
                std::to_string(item.model_refs),
                std::to_string(sel.chosen.size()),
                std::to_string(sel.bytes_used), saved, pct,
                !item.replay_ran          ? "-"
                : item.replay.matches()   ? "ok"
                                          : "MISMATCH"});
  }
  return tp.str();
}

std::string SweepReport::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("items").begin_array();
  for (const auto& item : items) {
    w.begin_object();
    w.key("program").value(item.program);
    w.key("capacity_bytes").value(item.point.capacity_bytes);
    w.key("ok").value(item.status.ok());
    if (!item.status.ok()) {
      w.key("error_class").value(item.status.code_name());
      w.key("phase").value(item.status.phase());
      w.key("error").value(item.status.message());
      w.end_object();
      continue;
    }
    w.key("model_refs").value(static_cast<uint64_t>(item.model_refs));
    w.key("candidates").value(static_cast<uint64_t>(item.candidate_count));
    w.key("buffers_chosen")
        .value(static_cast<uint64_t>(item.spm.exact.chosen.size()));
    w.key("bytes_used").value(item.spm.exact.bytes_used);
    w.key("saved_nj").value(item.spm.exact.saved_nj);
    w.key("greedy_saved_nj").value(item.spm.greedy.saved_nj);
    w.key("baseline_nj").value(item.spm.baseline.baseline_nj);
    w.key("with_spm_nj").value(item.spm.with_spm.total_nj);
    if (item.replay_ran) {
      const auto& r = item.replay;
      w.key("replay").begin_object();
      w.key("ok").value(r.matches());
      w.key("rectangular").value(r.rectangular);
      w.key("sim_spm_accesses").value(r.sim_spm_accesses);
      w.key("sim_main_accesses").value(r.sim_main_accesses);
      w.key("sim_transfer_words").value(r.sim_transfer_words);
      w.key("analytic_spm_accesses").value(r.ana_spm_accesses);
      w.key("analytic_main_accesses").value(r.ana_main_accesses);
      w.key("analytic_transfer_words").value(r.ana_transfer_words);
      if (!r.mismatches.empty()) {
        w.key("mismatches").begin_array();
        for (const auto& m : r.mismatches) w.value(m);
        w.end_array();
      }
      w.end_object();
    }
    if (!item.spm.caches.empty()) {
      w.key("caches").begin_array();
      for (const auto& c : item.spm.caches) {
        w.begin_object();
        w.key("assoc").value(c.assoc);
        w.key("hits").value(c.hits);
        w.key("misses").value(c.misses);
        w.key("energy_nj").value(c.energy_nj);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.key("sessions").begin_array();
  for (const auto& session : sessions) {
    if (session == nullptr) continue;
    w.begin_object();
    w.key("program").value(session->name());
    w.key("ok").value(session->status().ok());
    if (!session->status().ok()) {
      w.key("error_class").value(session->status().code_name());
      w.key("phase").value(session->status().phase());
    }
    if (session->from_cache()) {
      // A cache-adopted session never ran the simulator; zeros here would
      // read as a real (empty) run, so say what actually happened.
      w.key("model_cache").value("hit");
    } else if (session->status().ok()) {
      const auto& res = session->result();
      w.key("steps").value(res.run.steps);
      w.key("accesses").value(res.run.accesses);
      w.key("trace_records").value(res.trace_records);
      w.key("analyzer_state_bytes")
          .value(static_cast<uint64_t>(
              res.extractor != nullptr ? res.extractor->state_bytes() : 0));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void SweepReport::write_ndjson(std::ostream& out) const {
  out << header_line(grid, programs) << '\n';
  const size_t per_job = grid.points_per_job();
  std::vector<AggCell> agg(per_job);
  for (size_t j = 0; j < programs.size(); ++j) {
    const SweepItem* block = &items[j * per_job];
    for (size_t i = 0; i < per_job; ++i) {
      out << point_line(block[i]) << '\n';
    }
    out << pareto_line("program", programs[j], job_pareto(grid, j, block))
        << '\n';
    accumulate_aggregate(agg, grid, block);
  }
  out << pareto_line("aggregate", "", aggregate_pareto(grid, agg)) << '\n';
}

std::string SweepReport::ndjson() const {
  std::ostringstream os;
  write_ndjson(os);
  return os.str();
}

// -- driver -------------------------------------------------------------------

SweepDriver::SweepDriver(SweepOptions opts) : opts_(std::move(opts)) {
  opts_.pipeline.with_spm = true;
  if (opts_.threads < 1) opts_.threads = 1;
  grid_ = SweepGrid::expand(opts_.spec, opts_.pipeline);
}

SweepReport SweepDriver::run(const std::vector<SweepJob>& jobs) const {
  const size_t per_job = grid_.points_per_job();
  SweepReport report;
  report.grid = grid_;
  for (const auto& job : jobs) report.programs.push_back(job.name);
  report.items.resize(jobs.size() * per_job);
  report.sessions.resize(jobs.size());

  // Every (job, point) slot is preallocated, so concurrent on_item calls
  // write disjoint memory and need no lock.
  SweepExec exec(
      jobs, opts_, grid_, /*retain_full=*/true, ResumePlan{},
      [&report, per_job](size_t j, SweepItem&& item, size_t i) {
        report.items[j * per_job + i] = std::move(item);
      },
      [this, &report, &jobs, per_job](size_t j, const util::Status& st) {
        // The buffered report keeps the grid shape, so every cell of a
        // lint-refused job carries the same per-program status.
        for (size_t i = 0; i < per_job; ++i) {
          SweepItem item;
          item.program = jobs[j].name;
          item.key = grid_.points[i].key;
          item.key.job = j;
          item.point = grid_.points[i];
          item.status = st;
          report.items[j * per_job + i] = std::move(item);
        }
      },
      [&report](size_t j, std::unique_ptr<Session> session) {
        report.sessions[j] = std::move(session);
      });
  exec.wait();
  return report;
}

util::Status SweepDriver::run_ndjson(const std::vector<SweepJob>& jobs,
                                     std::ostream& out,
                                     const SweepCheckpoint* resume) const {
  const size_t per_job = grid_.points_per_job();
  std::vector<std::string> names;
  for (const auto& job : jobs) names.push_back(job.name);
  const std::string header = header_line(grid_, names);
  if (resume != nullptr && resume->header != header) {
    // Header equality is the grid/job-list fingerprint: a journal from a
    // different spec, program set or job order must not be stitched into
    // this run.
    return util::Status::failure(
        util::ErrorCode::kInvalidInput, "sweep-resume", 0,
        "resume journal header does not match this sweep's grid and "
        "job list");
  }
  out << header << '\n';

  // Each item is rendered and reduced (NDJSON line, aggregate scalars,
  // failure status) the moment its point resolves, then dropped — a slot
  // never holds an SpmReport, only the finished text and a few numbers.
  // Slots are per (job, point), written concurrently without a lock; the
  // job-finalizing worker assembles them into one Block in point order,
  // published out of order and drained in job order by this thread.
  struct NdPoint {
    std::string line;
    bool ok = false;
    uint64_t bytes = 0;
    double saved = 0.0;
    util::Status failure;
  };
  struct Block {
    bool ready = false;
    std::string text;
    std::vector<AggCell> agg;
    util::Status first_failure;
  };
  std::vector<std::vector<NdPoint>> slots(jobs.size());
  for (auto& s : slots) s.resize(per_job);
  // Cached checkpoint rows pre-fill their slots; SweepExec skips those
  // points, so workers only ever write the slots left empty here.
  if (resume != nullptr) {
    for (size_t j = 0; j < jobs.size() && j < resume->points.size(); ++j) {
      for (size_t i = 0; i < per_job && i < resume->points[j].size(); ++i) {
        const SweepCheckpoint::CachedPoint& c = resume->points[j][i];
        if (!c.have) continue;
        NdPoint& p = slots[j][i];
        p.line = c.line;
        p.ok = true;
        p.bytes = c.bytes;
        p.saved = c.saved;
      }
    }
  }
  std::vector<Block> blocks(jobs.size());
  std::mutex mu;
  std::condition_variable cv;

  ResumePlan plan;
  plan.checkpoint = resume;
  plan.per_job = per_job;
  SweepExec exec(
      jobs, opts_, grid_, /*retain_full=*/false, plan,
      [&slots](size_t j, SweepItem&& item, size_t i) {
        NdPoint& p = slots[j][i];
        p.line = point_line(item);
        if (!item.status.ok()) {
          p.failure = item.status;
          return;
        }
        p.ok = true;
        const spm::Selection& sel = item.selection();
        p.bytes = sel.bytes_used;
        p.saved = sel.saved_nj;
        // A replay counter mismatch is a validation failure even though
        // the point itself solved; surface it like the non-streaming CLI
        // paths do.
        if (item.replay_ran && !item.replay.matches()) {
          p.failure = util::Status::failure(
              "replay", 0,
              item.program + " @" +
                  std::to_string(item.point.capacity_bytes) +
                  "B: transform-replay mismatch");
        }
      },
      [per_job, &jobs, &blocks, &mu, &cv](size_t j,
                                          const util::Status& st) {
        // One `lint` row plus the program's (empty) pareto line stands in
        // for the whole point block — the single-row contract of
        // lint_first.
        Block block;
        block.agg.resize(per_job);
        for (AggCell& cell : block.agg) {
          ++cell.jobs_seen;
          cell.all_ok = false;
        }
        block.text = lint_line(jobs[j].name, st);
        block.text += '\n';
        block.text += pareto_line("program", jobs[j].name, {});
        block.text += '\n';
        block.first_failure = st;
        {
          std::lock_guard<std::mutex> lock(mu);
          block.ready = true;
          blocks[j] = std::move(block);
        }
        cv.notify_all();
      },
      [this, per_job, &jobs, &slots, &blocks, &mu, &cv](
          size_t j, std::unique_ptr<Session>) {
        Block block;
        block.agg.resize(per_job);
        std::vector<Objective> objs;
        for (size_t i = 0; i < per_job; ++i) {
          NdPoint& p = slots[j][i];
          block.text += p.line;
          block.text += '\n';
          p.line.clear();
          p.line.shrink_to_fit();
          AggCell& cell = block.agg[i];
          ++cell.jobs_seen;
          if (p.ok) {
            cell.bytes += p.bytes;
            cell.saved += p.saved;
            objs.push_back(Objective{i, p.bytes, p.saved});
          } else {
            cell.all_ok = false;
          }
          if (block.first_failure.ok() && !p.failure.ok()) {
            block.first_failure = p.failure;
          }
        }
        block.text += pareto_line(
            "program", jobs[j].name,
            to_pareto_points(grid_, j, std::move(objs)));
        block.text += '\n';
        {
          std::lock_guard<std::mutex> lock(mu);
          block.ready = true;
          blocks[j] = std::move(block);
        }
        cv.notify_all();
      });

  std::vector<AggCell> agg(per_job);
  util::Status first_failure;
  util::Status sink_failure;
  for (size_t j = 0; j < jobs.size(); ++j) {
    Block block;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return blocks[j].ready; });
      block = std::move(blocks[j]);
    }
    // Fault site "sweep.sink.io" stands in for a real write failure
    // (EIO, ENOSPC); either way the journal so far holds only whole job
    // blocks in deterministic order — exactly what --resume accepts —
    // so abandon the sweep instead of writing a torn line.
    if (util::fault::enabled() &&
        util::fault::should_fail("sweep.sink.io")) {
      sink_failure = util::Status::failure(
          util::ErrorCode::kIoError, "sweep-sink", 0,
          "injected NDJSON sink write failure");
      break;
    }
    if (!(out << block.text)) {
      sink_failure =
          util::Status::failure(util::ErrorCode::kIoError, "sweep-sink", 0,
                                "NDJSON sink write failed");
      break;
    }
    for (size_t i = 0; i < per_job; ++i) {
      agg[i].jobs_seen += block.agg[i].jobs_seen;
      agg[i].all_ok = agg[i].all_ok && block.agg[i].all_ok;
      agg[i].bytes += block.agg[i].bytes;
      agg[i].saved += block.agg[i].saved;
    }
    if (first_failure.ok()) first_failure = block.first_failure;
  }
  // Always a full barrier, even on the sink-failure early exit: workers
  // still hold references to slots/blocks on this frame.
  exec.wait();
  if (!sink_failure.ok()) return sink_failure;
  out << pareto_line("aggregate", "", aggregate_pareto(grid_, agg)) << '\n';
  return first_failure;
}

util::Status SweepDriver::parse_resume(std::string_view journal,
                                       SweepCheckpoint* out) const {
  *out = SweepCheckpoint{};
  const size_t per_job = grid_.points_per_job();
  const auto bad = [](int line_no, const std::string& msg) {
    return util::Status::failure(util::ErrorCode::kInvalidInput,
                                 "sweep-resume", line_no, msg);
  };
  int line_no = 0;
  const std::vector<std::string_view> lines = util::split(journal, '\n');
  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string_view line = lines[li];
    ++line_no;
    if (trim(line).empty()) continue;
    util::JsonValue v;
    std::string err;
    if (!util::parse_json(line, &v, &err)) {
      // A torn final line is the expected shape of a journal cut off by
      // a crash or sink failure; anything torn *before* the end is a
      // corrupt journal, not a checkpoint.
      if (li + 1 >= lines.size() ||
          (li + 2 == lines.size() && trim(lines[li + 1]).empty())) {
        break;
      }
      return bad(line_no, "corrupt journal line: " + err);
    }
    const util::JsonValue* kind = v.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return bad(line_no, "journal line has no kind");
    }
    if (kind->str == "sweep") {
      if (!out->header.empty()) {
        return bad(line_no, "journal has more than one header line");
      }
      out->header = std::string(line);
      const util::JsonValue* programs = v.find("programs");
      if (programs == nullptr || !programs->is_array()) {
        return bad(line_no, "journal header has no programs array");
      }
      for (const util::JsonValue& p : programs->items) {
        if (!p.is_string()) {
          return bad(line_no, "journal header programs must be strings");
        }
        out->programs.push_back(p.str);
      }
      out->points.resize(out->programs.size());
      for (auto& pts : out->points) pts.resize(per_job);
      continue;
    }
    if (kind->str != "point") continue;  // pareto lines are recomputed
    if (out->header.empty()) {
      return bad(line_no, "journal point line before the header");
    }
    const util::JsonValue* key = v.find("key");
    if (key == nullptr || !key->is_object()) {
      return bad(line_no, "point line has no key object");
    }
    PointKey k;
    const auto index_of = [&](const char* name, size_t* dst) {
      const util::JsonValue* f = key->find(name);
      if (f == nullptr || !f->is_number() || f->num < 0) return false;
      *dst = static_cast<size_t>(f->num);
      return true;
    };
    if (!index_of("job", &k.job) || !index_of("capacity", &k.capacity) ||
        !index_of("energy", &k.energy) || !index_of("cache", &k.cache) ||
        !index_of("algorithm", &k.algorithm) ||
        !index_of("replay", &k.replay)) {
      return bad(line_no, "point key is malformed");
    }
    if (k.job >= out->points.size()) {
      return bad(line_no, "point key job index out of range");
    }
    if (k.capacity >= grid_.capacities.size() ||
        k.energy >= grid_.energy_models.size() ||
        k.cache >= grid_.caches.size() ||
        k.algorithm >= grid_.algorithms.size() ||
        k.replay >= grid_.replays.size()) {
      return bad(line_no, "point key does not fit this sweep's grid");
    }
    const size_t flat = grid_.flat_index(k);
    const util::JsonValue* ok = v.find("ok");
    if (ok == nullptr || !ok->is_bool()) {
      return bad(line_no, "point line has no ok flag");
    }
    // Only clean successes are worth caching: failed rows are what
    // --resume exists to retry, and a replay-check mismatch is a failed
    // validation even though the solve succeeded.
    if (!ok->b) continue;
    const util::JsonValue* replay_check = v.find("replay_check");
    if (replay_check != nullptr) {
      const util::JsonValue* rok = replay_check->find("ok");
      if (rok == nullptr || !rok->is_bool() || !rok->b) continue;
    }
    const util::JsonValue* bytes = v.find("bytes_used");
    const util::JsonValue* saved = v.find("saved_nj");
    if (bytes == nullptr || !bytes->is_number() || saved == nullptr ||
        !saved->is_number()) {
      return bad(line_no, "point line lacks bytes_used/saved_nj");
    }
    SweepCheckpoint::CachedPoint& c = out->points[k.job][flat];
    c.have = true;
    c.line = std::string(line);
    c.bytes = static_cast<uint64_t>(bytes->num);
    c.saved = saved->num;
  }
  if (out->header.empty()) {
    return bad(0, "journal has no sweep header line");
  }
  return {};
}

std::vector<SweepJob> SweepDriver::benchsuite_jobs() {
  std::vector<SweepJob> jobs;
  for (const auto& b : benchsuite::all_benchmarks()) {
    jobs.push_back(SweepJob{b.name, b.source});
  }
  return jobs;
}

}  // namespace foray::driver
