// Step 1 of Algorithm 1: checkpoint annotation.
//
// Walks the AST, assigns a dense loop id to every loop statement (for,
// while, do) and collects the loop-site table used throughout the
// pipeline: per loop we record its syntactic kind, source line, enclosing
// function and lexical nesting depth. The interpreter emits checkpoint
// trace records for annotated loops; the statistics module derives
// Table I's loop-form breakdown from this table.
#pragma once

#include <string>
#include <vector>

#include "minic/ast.h"

namespace foray::instrument {

enum class LoopKind : uint8_t { For, While, Do };

struct LoopSite {
  int loop_id = -1;
  LoopKind kind = LoopKind::For;
  int line = 0;
  int func_id = -1;
  std::string func_name;
  int lexical_depth = 0;  ///< 0 = not nested in another loop of the same fn
};

struct LoopSiteTable {
  std::vector<LoopSite> sites;  ///< indexed by loop_id

  const LoopSite& site(int loop_id) const { return sites.at(loop_id); }
  int count() const { return static_cast<int>(sites.size()); }
  int count_kind(LoopKind k) const {
    int n = 0;
    for (const auto& s : sites)
      if (s.kind == k) ++n;
    return n;
  }
};

/// Annotates the program in place (fills Stmt::loop_id for every loop) and
/// returns the loop-site table. Idempotent: re-running reassigns the same
/// ids.
LoopSiteTable annotate_loops(minic::Program* prog);

const char* loop_kind_name(LoopKind k);

}  // namespace foray::instrument
