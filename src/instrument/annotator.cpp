#include "instrument/annotator.h"

namespace foray::instrument {

namespace {

using minic::Stmt;
using minic::StmtKind;

class Annotator {
 public:
  explicit Annotator(LoopSiteTable* table) : table_(table) {}

  void walk_function(minic::Function* fn) {
    func_id_ = fn->func_id;
    func_name_ = fn->name;
    depth_ = 0;
    walk(fn->body.get());
  }

 private:
  void walk(Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::While:
      case StmtKind::DoWhile:
      case StmtKind::For: {
        LoopSite site;
        site.loop_id = static_cast<int>(table_->sites.size());
        site.kind = s->kind == StmtKind::For    ? LoopKind::For
                    : s->kind == StmtKind::While ? LoopKind::While
                                                 : LoopKind::Do;
        site.line = s->line;
        site.func_id = func_id_;
        site.func_name = func_name_;
        site.lexical_depth = depth_;
        s->loop_id = site.loop_id;
        table_->sites.push_back(std::move(site));
        ++depth_;
        walk(s->init.get());
        walk(s->body.get());
        --depth_;
        break;
      }
      case StmtKind::If:
        walk(s->then_branch.get());
        walk(s->else_branch.get());
        break;
      case StmtKind::Block:
        for (auto& st : s->stmts) walk(st.get());
        break;
      default:
        break;
    }
  }

  LoopSiteTable* table_;
  int func_id_ = -1;
  std::string func_name_;
  int depth_ = 0;
};

}  // namespace

LoopSiteTable annotate_loops(minic::Program* prog) {
  LoopSiteTable table;
  Annotator a(&table);
  for (auto& fn : prog->funcs) a.walk_function(fn.get());
  return table;
}

const char* loop_kind_name(LoopKind k) {
  switch (k) {
    case LoopKind::For: return "for";
    case LoopKind::While: return "while";
    case LoopKind::Do: return "do";
  }
  return "?";
}

}  // namespace foray::instrument
