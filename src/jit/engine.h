// The jit engine: native-code handlers over the shared VM opcode bodies.
//
// JitOps<SinkT> is the templated half of the template JIT. For every
// opcode it wraps the corresponding Vm<SinkT>::do_<Op>() body (the very
// methods the dispatch-loop VM executes) in an extern-callable function
// whose frame sits directly below the emitted code. Two rules make that
// boundary safe:
//
//   1. C++ exceptions never unwind through emitted frames (they carry
//      no unwind tables): every handler catches everything, parks the
//      exception_ptr on the Vm, and returns a fault flag; the emitted
//      code branches to its epilogue and run() rethrows from C++, where
//      execute_guarded applies the same classification as for the VM.
//   2. Step accounting stays in the emitted per-instruction prefix (a
//      down-counter in r14); handlers never touch it, mirroring how the
//      VM keeps its step counter in dispatch-loop locals.
//
// Vm member offsets are measured from a probe instance (Vm has
// reference members, so offsetof would be conditionally-supported) and
// handed to the non-templated compiler driver as plain data.
#pragma once

#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "jit/compiler.h"
#include "sim/vm.h"

namespace foray::jit {

template <class SinkT>
struct JitOps {
  using VmT = sim::internal::Vm<SinkT>;
  using Insn = sim::Insn;
  using Op = sim::Op;

  // -- handlers (called from emitted code) -----------------------------------

#define FORAY_JIT_HANDLER(name)                                  \
  static uint32_t h_##name(VmT* vm, const Insn* ip) noexcept {   \
    try {                                                        \
      (void)vm->do_##name(ip);                                   \
      return 0;                                                  \
    } catch (...) {                                              \
      vm->jit_pending_ = std::current_exception();               \
      return 1;                                                  \
    }                                                            \
  }
  FORAY_JIT_HANDLER(PushInt)
  FORAY_JIT_HANDLER(PushFloat)
  FORAY_JIT_HANDLER(PushStr)
  FORAY_JIT_HANDLER(LoadGlobal)
  FORAY_JIT_HANDLER(LoadLocal)
  FORAY_JIT_HANDLER(PushGlobalPtr)
  FORAY_JIT_HANDLER(PushLocalPtr)
  FORAY_JIT_HANDLER(PushSlotAddr)
  FORAY_JIT_HANDLER(PushGlobalSlotAddr)
  FORAY_JIT_HANDLER(IndexAddr)
  FORAY_JIT_HANDLER(LoadMem)
  FORAY_JIT_HANDLER(IndexLoad)
  FORAY_JIT_HANDLER(StoreMem)
  FORAY_JIT_HANDLER(IndexStore)
  FORAY_JIT_HANDLER(StoreInit)
  FORAY_JIT_HANDLER(CompoundLoad)
  FORAY_JIT_HANDLER(StoreBin)
  FORAY_JIT_HANDLER(CastToPtr)
  FORAY_JIT_HANDLER(Neg)
  FORAY_JIT_HANDLER(NotOp)
  FORAY_JIT_HANDLER(BitNotOp)
  FORAY_JIT_HANDLER(Truthy)
  FORAY_JIT_HANDLER(Binary)
  FORAY_JIT_HANDLER(ConvertOp)
  FORAY_JIT_HANDLER(IncDec)
  FORAY_JIT_HANDLER(IncDecLocal)
  FORAY_JIT_HANDLER(IncDecGlobal)
  FORAY_JIT_HANDLER(SaveSp)
  FORAY_JIT_HANDLER(RestoreSp)
  FORAY_JIT_HANDLER(RestoreSpN)
  FORAY_JIT_HANDLER(DeclLocal)
  FORAY_JIT_HANDLER(DeclGlobal)
  FORAY_JIT_HANDLER(CallFn)  // direct jump to the callee follows in code
  FORAY_JIT_HANDLER(CallIntr)
  FORAY_JIT_HANDLER(RetValue)
  FORAY_JIT_HANDLER(CheckpointOp)
  FORAY_JIT_HANDLER(Halt)
#undef FORAY_JIT_HANDLER

  static uint32_t h_ThrowUnbound(VmT* vm, const Insn* ip) noexcept {
    try {
      vm->do_ThrowUnbound(ip);
    } catch (...) {
      vm->jit_pending_ = std::current_exception();
    }
    return 1;
  }

  /// ReturnOp: the resume pc, or ~0 on a parked fault.
  static uint64_t h_ReturnOp(VmT* vm, const Insn* ip) noexcept {
    try {
      return vm->do_ReturnOp(ip);
    } catch (...) {
      vm->jit_pending_ = std::current_exception();
      return ~uint64_t{0};
    }
  }

  /// A fused [push/load][push/load][Binary][JumpIf*] loop head. The
  /// emitted guard has already claimed 4 steps; per-sub-op line stores
  /// keep fault lines exact. Returns 0 = branch not taken, 1 = taken,
  /// 2 = fault parked.
  static uint32_t h_fused_head(VmT* vm, const Insn* ip) noexcept {
    try {
      for (int k = 0; k < 2; ++k) {
        const Insn* p = ip + k;
        vm->cur_line_ = p->line;
        switch (p->op) {
          case Op::PushInt: vm->do_PushInt(p); break;
          case Op::LoadLocal: vm->do_LoadLocal(p); break;
          default: vm->do_LoadGlobal(p); break;  // fusable_operand gate
        }
      }
      vm->cur_line_ = ip[2].line;
      vm->do_Binary(ip + 2);
      vm->cur_line_ = ip[3].line;
      return vm->do_pop_truthy() ? 1u : 0u;
    } catch (...) {
      vm->jit_pending_ = std::current_exception();
      return 2;
    }
  }

  /// The straight-line core shared by every fused shape: executes
  /// [ip, end) of FORAY_JIT_BLOCK_OPS with per-instruction line stores
  /// and NO step accounting (callers pre-claim the steps). May throw —
  /// callers own the catch/park boundary. (Not ALWAYS_INLINE: the
  /// computed-goto label table pins this function in place; both
  /// callers make one direct call per fused run.)
  static void exec_straight(VmT* vm, const Insn* ip,
                            const Insn* const end) {
    if (ip == end) return;
#if defined(__GNUC__) || defined(__clang__)
    // Threaded dispatch, the VM's own technique: every body ends in its
    // own indirect jump, which predicts far better than a single shared
    // switch site.
#define FORAY_JIT_BLOCK_LABEL(name) &&L_##name,
    static const void* const kLabels[] = {
        FORAY_VM_OPS(FORAY_JIT_BLOCK_LABEL)};
#undef FORAY_JIT_BLOCK_LABEL
#define FORAY_JIT_NEXT()                        \
  do {                                          \
    if (++ip == end) return;                    \
    vm->cur_line_ = ip->line;                   \
    goto* kLabels[static_cast<size_t>(ip->op)]; \
  } while (0)
    vm->cur_line_ = ip->line;
    goto* kLabels[static_cast<size_t>(ip->op)];
#define FORAY_JIT_BLOCK_BODY(name) \
  L_##name:                        \
  vm->do_##name(ip);               \
  FORAY_JIT_NEXT();
    FORAY_JIT_BLOCK_OPS(FORAY_JIT_BLOCK_BODY)
#undef FORAY_JIT_BLOCK_BODY
#undef FORAY_JIT_NEXT
  // Control flow never appears inside a fused run; the emitter only
  // fuses FORAY_JIT_BLOCK_OPS. Unreachable labels satisfy the table.
  L_Jump:
  L_JumpIfFalse:
  L_JumpIfTrue:
  L_CallFn:
  L_ReturnOp:
  L_Halt:
  L_ThrowUnbound:
    return;
#else
    for (; ip != end; ++ip) {
      vm->cur_line_ = ip->line;
      switch (ip->op) {
#define FORAY_JIT_BLOCK_CASE(name) \
  case Op::name:                   \
    vm->do_##name(ip);             \
    break;
        FORAY_JIT_BLOCK_OPS(FORAY_JIT_BLOCK_CASE)
#undef FORAY_JIT_BLOCK_CASE
        default:
          break;
      }
    }
#endif
  }

  /// A fused straight-line run of n FORAY_JIT_BLOCK_OPS instructions
  /// with the steps PRE-CLAIMED by the emitted `remaining >= n` guard:
  /// the loop body is line store + threaded dispatch + shared opcode
  /// body — strictly less per-instruction work than the VM loop, which
  /// additionally counts steps. Returns 0 = done, 1 = fault parked.
  /// (A mid-run fault leaves the unexecuted tail of the pre-claimed
  /// steps counted; the run is failing anyway, and step totals after
  /// non-step faults are not part of the equivalence contract. Step-
  /// limit faults never reach this handler — the guard routes runs near
  /// the budget edge to h_block, which counts exactly.)
  static uint32_t h_block_fast(VmT* vm, const Insn* ip,
                               uint64_t n) noexcept {
    try {
      exec_straight(vm, ip, ip + n);
      return 0;
    } catch (...) {
      vm->jit_pending_ = std::current_exception();
      return 1;
    }
  }

  /// A whole fused self-loop — [op op Binary JumpIf*][straight body]
  /// [Jump head] — iterated entirely inside one C++ frame: zero
  /// emitted-code transitions per iteration, no per-instruction step
  /// checks (one bulk claim per segment). Exit kinds (BlockExit.fault):
  /// 0 = branch taken, resume at its target; 1 = fault parked;
  /// 2 = within one iteration of the step budget — the emitted fallback
  /// (fused head + block + back jump, all exact at the edge) takes over
  /// with the returned `remaining`.
  static BlockExit h_loop(VmT* vm, const Insn* ip, uint64_t body_len,
                          uint64_t remaining) noexcept {
    const Insn* const body = ip + 4;
    const Insn* const back = body + body_len;  // the back-edge Jump
    const uint64_t need = 4 + body_len + 1;
    const bool exit_on_true = ip[3].op == Op::JumpIfTrue;
    try {
      for (;;) {
        if (remaining < need) return {remaining, 2};
        remaining -= 4;
        for (int k = 0; k < 2; ++k) {
          const Insn* p = ip + k;
          vm->cur_line_ = p->line;
          switch (p->op) {
            case Op::PushInt: vm->do_PushInt(p); break;
            case Op::LoadLocal: vm->do_LoadLocal(p); break;
            default: vm->do_LoadGlobal(p); break;  // fusable_operand gate
          }
        }
        vm->cur_line_ = ip[2].line;
        vm->do_Binary(ip + 2);
        vm->cur_line_ = ip[3].line;
        if (vm->do_pop_truthy() == exit_on_true) return {remaining, 0};
        remaining -= body_len;
        exec_straight(vm, body, back);
        vm->cur_line_ = back->line;
        remaining -= 1;
      }
    } catch (...) {
      vm->jit_pending_ = std::current_exception();
      return {remaining, 1};
    }
  }

  /// The same run with exact per-instruction step accounting — the
  /// budget-edge path behind h_block_fast's guard (remaining wraps on
  /// the faulting decrement, so steps = max + 1 on a step fault,
  /// exactly like the emitted per-instruction prefix).
  static BlockExit h_block(VmT* vm, const Insn* ip, uint64_t n,
                           uint64_t remaining) noexcept {
    try {
      for (const Insn* end = ip + n; ip != end; ++ip) {
        vm->cur_line_ = ip->line;
        if (remaining-- == 0) vm->step_limit_fault();
        switch (ip->op) {
#define FORAY_JIT_BLOCK_CASE(name) \
  case Op::name:                   \
    vm->do_##name(ip);             \
    break;
          FORAY_JIT_BLOCK_OPS(FORAY_JIT_BLOCK_CASE)
#undef FORAY_JIT_BLOCK_CASE
          default:  // unreachable: the emitter never blocks control flow
            break;
        }
      }
      return {remaining, 0};
    } catch (...) {
      vm->jit_pending_ = std::current_exception();
      return {remaining, 1};
    }
  }

  /// Truthiness of a float-typed scalar, shared with Value::truthy().
  static uint32_t value_truthy(const sim::Value* v) noexcept {
    return v->truthy() ? 1u : 0u;
  }

  static void h_step_fault(VmT* vm) noexcept {
    try {
      vm->step_limit_fault();
    } catch (...) {
      vm->jit_pending_ = std::current_exception();
    }
  }

  // -- tables ----------------------------------------------------------------

  static const JitHandlers& handlers() {
    static const JitHandlers kTable = [] {
      JitHandlers t;
#define FORAY_JIT_SET(name)                       \
  t.op[static_cast<size_t>(Op::name)] =           \
      reinterpret_cast<const void*>(&h_##name);
      FORAY_JIT_SET(PushInt)
      FORAY_JIT_SET(PushFloat)
      FORAY_JIT_SET(PushStr)
      FORAY_JIT_SET(LoadGlobal)
      FORAY_JIT_SET(LoadLocal)
      FORAY_JIT_SET(PushGlobalPtr)
      FORAY_JIT_SET(PushLocalPtr)
      FORAY_JIT_SET(ThrowUnbound)
      FORAY_JIT_SET(PushSlotAddr)
      FORAY_JIT_SET(PushGlobalSlotAddr)
      FORAY_JIT_SET(IndexAddr)
      FORAY_JIT_SET(LoadMem)
      FORAY_JIT_SET(IndexLoad)
      FORAY_JIT_SET(StoreMem)
      FORAY_JIT_SET(IndexStore)
      FORAY_JIT_SET(StoreInit)
      FORAY_JIT_SET(CompoundLoad)
      FORAY_JIT_SET(StoreBin)
      FORAY_JIT_SET(CastToPtr)
      FORAY_JIT_SET(Neg)
      FORAY_JIT_SET(NotOp)
      FORAY_JIT_SET(BitNotOp)
      FORAY_JIT_SET(Truthy)
      FORAY_JIT_SET(Binary)
      FORAY_JIT_SET(ConvertOp)
      FORAY_JIT_SET(IncDec)
      FORAY_JIT_SET(IncDecLocal)
      FORAY_JIT_SET(IncDecGlobal)
      FORAY_JIT_SET(SaveSp)
      FORAY_JIT_SET(RestoreSp)
      FORAY_JIT_SET(RestoreSpN)
      FORAY_JIT_SET(DeclLocal)
      FORAY_JIT_SET(DeclGlobal)
      FORAY_JIT_SET(CallFn)
      FORAY_JIT_SET(CallIntr)
      FORAY_JIT_SET(RetValue)
      FORAY_JIT_SET(CheckpointOp)
      FORAY_JIT_SET(Halt)
#undef FORAY_JIT_SET
      t.block = reinterpret_cast<const void*>(&h_block);
      t.block_fast = reinterpret_cast<const void*>(&h_block_fast);
      t.loop = reinterpret_cast<const void*>(&h_loop);
      t.return_op = reinterpret_cast<const void*>(&h_ReturnOp);
      t.fused_head = reinterpret_cast<const void*>(&h_fused_head);
      t.value_truthy = reinterpret_cast<const void*>(&value_truthy);
      t.step_fault = reinterpret_cast<const void*>(&h_step_fault);
      return t;
    }();
    return kTable;
  }

  /// Vm<SinkT> member offsets, measured once from a probe instance.
  static const JitLayout& layout() {
    static const JitLayout kLayout = [] {
      static const sim::CompiledProgram empty;
      sim::RunOptions probe_opts;
      probe_opts.heap_capacity = 64;
      probe_opts.stack_capacity = 64;
      VmT probe(empty, nullptr, probe_opts);
      const char* base = reinterpret_cast<const char*>(&probe);
      auto off = [base](const void* member) {
        return static_cast<uint32_t>(reinterpret_cast<const char*>(member) -
                                     base);
      };
      JitLayout lay;
      lay.off_sp = off(&probe.sp_);
      lay.off_cur_line = off(&probe.cur_line_);
      lay.off_cur_locals = off(&probe.cur_locals_);
      lay.off_globals_raw = off(&probe.globals_raw_);
      lay.value_size = sizeof(sim::Value);
      lay.val_off_base = static_cast<uint32_t>(
          offsetof(sim::Value, type) + offsetof(minic::Type, base));
      lay.val_off_ptr = static_cast<uint32_t>(offsetof(sim::Value, type) +
                                              offsetof(minic::Type, ptr));
      lay.val_off_i = static_cast<uint32_t>(offsetof(sim::Value, i));
      lay.val_off_f = static_cast<uint32_t>(offsetof(sim::Value, f));
      lay.slot_size = sizeof(typename VmT::VmSlot);
      lay.slot_off_addr =
          static_cast<uint32_t>(offsetof(typename VmT::VmSlot, addr));
      lay.base_int = static_cast<uint8_t>(minic::BaseType::Int);
      lay.base_float = static_cast<uint8_t>(minic::BaseType::Float);
      return lay;
    }();
    return kLayout;
  }

  // -- execution -------------------------------------------------------------

  static sim::RunResult run(VmT& vm, const CompiledNative& native) {
    return vm.run_guarded([&] {
      using EntryFn = uint64_t (*)(void*, void* const*, uint64_t);
      const EntryFn entry = reinterpret_cast<EntryFn>(
          const_cast<void*>(native.entry()));
      const uint64_t max_steps = vm.max_steps_;
      const uint64_t remaining =
          entry(&vm, native.pc_table(), max_steps - vm.steps_);
      // Unsigned wrap gives the VM's exact step count in both exits:
      // normal Halt, and step fault (borrowed counter = max + 1 steps).
      vm.steps_ = max_steps - remaining;
      if (vm.jit_pending_) {
        std::exception_ptr pending = std::exchange(vm.jit_pending_, nullptr);
        std::rethrow_exception(pending);
      }
    });
  }
};

/// A program compiled for the jit engine. Owns both halves: the emitted
/// code holds absolute pointers into `bytecode` (instructions, function
/// table), so the pair must stay together — moving the struct is fine
/// (vector moves keep their buffers), copying the bytecode out is not.
/// When `status` is not ok, `native` is null and runs fall back to the
/// bytecode VM on the same `bytecode`.
struct JitProgram {
  sim::CompiledProgram bytecode;
  std::unique_ptr<CompiledNative> native;
  util::Status status;
};

template <class SinkT>
JitProgram compile_jit(const minic::Program& prog) {
  JitProgram jp;
  jp.bytecode = sim::compile_program(prog);
  jp.status = compile_native(jp.bytecode, JitOps<SinkT>::handlers(),
                             JitOps<SinkT>::layout(), &jp.native);
  return jp;
}

/// Runs a jit-compiled program. `code` must be the exact CompiledProgram
/// `native` was compiled from.
template <class SinkT>
sim::RunResult run_jit_compiled(const sim::CompiledProgram& code,
                                const CompiledNative& native, SinkT* sink,
                                const sim::RunOptions& opts) {
  sim::internal::Vm<SinkT> vm(code, sink, opts);
  return JitOps<SinkT>::run(vm, native);
}

/// One-line stderr note, printed once per process, when --engine jit
/// degrades to the bytecode VM (unsupported platform / mapping failure).
inline void note_jit_fallback(const util::Status& why) {
  static const bool noted = [&why] {
    std::fprintf(stderr,
                 "foraygen: jit engine unavailable (%s); running on the "
                 "bytecode engine\n",
                 why.message().c_str());
    return true;
  }();
  (void)noted;
}

/// Compiles and executes `prog` on the jit engine, degrading to the
/// bytecode VM (identical results, classified stderr note) when native
/// compilation is unavailable.
template <class SinkT>
sim::RunResult run_jit_with(const minic::Program& prog, SinkT* sink,
                            const sim::RunOptions& opts) {
  JitProgram jp = compile_jit<SinkT>(prog);
  if (!jp.status.ok()) {
    note_jit_fallback(jp.status);
    return sim::run_compiled_with(jp.bytecode, sink, opts);
  }
  return run_jit_compiled(jp.bytecode, *jp.native, sink, opts);
}

}  // namespace foray::jit
