#include "jit/exec_memory.h"

#include <cerrno>
#include <cstring>
#include <string>

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define FORAY_JIT_SUPPORTED 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace foray::jit {

bool jit_supported() {
#ifdef FORAY_JIT_SUPPORTED
  return true;
#else
  return false;
#endif
}

#ifdef FORAY_JIT_SUPPORTED

namespace {
size_t round_to_pages(size_t bytes) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return (bytes + page - 1) / page * page;
}
}  // namespace

util::Status ExecMemory::allocate(size_t bytes, ExecMemory* out) {
  if (bytes == 0) {
    return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                                 "empty code buffer");
  }
  const size_t mapped = round_to_pages(bytes);
  void* p = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return util::Status::failure(
        util::ErrorCode::kIoError, "jit", 0,
        std::string("mmap of ") + std::to_string(mapped) +
            " code bytes failed: " + std::strerror(errno));
  }
  out->release();
  out->base_ = p;
  out->size_ = mapped;
  return util::Status();
}

util::Status ExecMemory::finalize() {
  if (base_ == nullptr) {
    return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                                 "finalize of unmapped code buffer");
  }
  if (::mprotect(base_, size_, PROT_READ | PROT_EXEC) != 0) {
    return util::Status::failure(
        util::ErrorCode::kIoError, "jit", 0,
        std::string("mprotect(rx) failed: ") + std::strerror(errno));
  }
  // x86 has coherent instruction caches; this is a no-op there but keeps
  // the W^X flip correct if the platform gate ever widens.
  __builtin___clear_cache(static_cast<char*>(base_),
                          static_cast<char*>(base_) + size_);
  return util::Status();
}

void ExecMemory::release() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
    size_ = 0;
  }
}

#else  // !FORAY_JIT_SUPPORTED

util::Status ExecMemory::allocate(size_t, ExecMemory* ) {
  return util::Status::failure(
      util::ErrorCode::kInvalidInput, "jit", 0,
      "the jit engine supports x86-64 Linux/macOS only on this build");
}

util::Status ExecMemory::finalize() {
  return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                               "finalize without jit support");
}

void ExecMemory::release() {}

#endif  // FORAY_JIT_SUPPORTED

}  // namespace foray::jit
