// Template-JIT compiler driver: lowers a sim::CompiledProgram to x86-64.
//
// The driver is deliberately non-templated: it receives the per-sink
// handler table (JitHandlers, function pointers into the templated
// JitOps<SinkT> wrappers from jit/engine.h) and the Vm member offsets
// (JitLayout, measured per instantiation) as plain data, so one
// compiled-in code generator serves every sink type.
//
// Emission strategy — one blob per bytecode instruction:
//   * every blob starts with the exact VM dispatch prefix (store the
//     source line, decrement the step down-counter, borrow = step-limit
//     fault), so step accounting and fault lines match the VM per
//     instruction, not per block;
//   * trivial stack ops (PushInt/PushFloat/PopV, slot-address pushes)
//     and all control flow (Jump/JumpIf*/Call/Return dispatch) are
//     emitted inline; everything else is a direct call into the shared
//     do_<Op>() bodies via the handler table — semantics identical to
//     the VM by construction;
//   * 4-instruction loop heads (load/load-or-push, compare, conditional
//     jump, no interior jump targets) are fused behind a single handler
//     call guarded by `remaining >= 4`, with an exact unfused copy on
//     the cold (budget-edge) path.
//
// Faults never unwind through emitted frames: handlers catch, park the
// exception on the Vm, and return a flag; the blob branches to the
// epilogue and JitOps::run rethrows from C++.
#pragma once

#include <cstdint>
#include <memory>

#include "jit/exec_memory.h"
#include "sim/bytecode.h"
#include "util/status.h"

namespace foray::jit {

/// Byte offsets into the concrete Vm<SinkT> instantiation (measured by
/// JitOps<SinkT>::layout(); Vm is not standard-layout, so offsets come
/// from a probe instance rather than offsetof) plus the Value/VmSlot
/// geometry the inline templates bake into loads and stores.
struct JitLayout {
  uint32_t off_sp = 0;          ///< Value* sp_
  uint32_t off_cur_line = 0;    ///< int cur_line_
  uint32_t off_cur_locals = 0;  ///< VmSlot* cur_locals_
  uint32_t off_globals_raw = 0; ///< VmSlot* globals_raw_
  uint32_t value_size = 0;      ///< sizeof(Value)
  uint32_t val_off_base = 0;    ///< Value::type.base (uint8)
  uint32_t val_off_ptr = 0;     ///< Value::type.ptr (int32)
  uint32_t val_off_i = 0;       ///< Value::i (int64)
  uint32_t val_off_f = 0;       ///< Value::f (double bits)
  uint32_t slot_size = 0;       ///< sizeof(VmSlot)
  uint32_t slot_off_addr = 0;   ///< VmSlot::addr (uint32)
  uint8_t base_int = 0;         ///< BaseType::Int tag
  uint8_t base_float = 0;       ///< BaseType::Float tag
};

/// Straight-line opcodes eligible for block fusion: every opcode that
/// never redirects the pc. The emitter folds maximal runs of these
/// (with no interior jump targets) behind ONE h_block call; the handler
/// dispatches them in C++ with the line store and step decrement per
/// instruction, so semantics — including step-limit faults mid-run —
/// stay exactly the VM's while the call overhead amortizes over the
/// whole run.
#define FORAY_JIT_BLOCK_OPS(X)                                        \
  X(PushInt) X(PushFloat) X(PushStr) X(LoadGlobal) X(LoadLocal)       \
  X(PushGlobalPtr) X(PushLocalPtr) X(PushSlotAddr)                    \
  X(PushGlobalSlotAddr) X(IndexAddr) X(LoadMem) X(IndexLoad)          \
  X(StoreMem) X(IndexStore) X(StoreInit) X(CompoundLoad) X(StoreBin)  \
  X(CastToPtr) X(Neg) X(NotOp) X(BitNotOp) X(Truthy) X(Binary)        \
  X(ConvertOp) X(IncDec) X(IncDecLocal) X(IncDecGlobal) X(PopV)       \
  X(SaveSp) X(RestoreSp) X(RestoreSpN) X(DeclLocal) X(DeclGlobal)     \
  X(CallIntr) X(RetValue) X(CheckpointOp)

/// How a fused straight-line run exits, in the SysV two-register return
/// (rax = remaining, rdx = fault flag).
struct BlockExit {
  uint64_t remaining = 0;  ///< step down-counter after the run
  uint64_t fault = 0;      ///< 1 = exception parked on the Vm
};

/// Function pointers into JitOps<SinkT> (jit/engine.h). Default handlers
/// are `uint32_t(Vm*, const Insn*)` returning 0 = continue / 1 = fault
/// parked on the Vm; the specially-typed entries are documented inline.
struct JitHandlers {
  const void* op[sim::kNumOps] = {};
  /// BlockExit(Vm*, const Insn* ip, uint64_t n, uint64_t remaining):
  /// executes a straight-line run of n FORAY_JIT_BLOCK_OPS instructions
  /// with exact per-instruction step accounting (the budget-edge path).
  const void* block = nullptr;
  /// uint32_t(Vm*, const Insn* ip, uint64_t n): the same run with the n
  /// steps pre-claimed by the emitted guard (`remaining >= n`), so the
  /// loop carries no step checks at all; 0 = done, 1 = fault parked.
  const void* block_fast = nullptr;
  /// BlockExit(Vm*, const Insn* head, uint64_t body_len, uint64_t
  /// remaining): a whole self-loop — fusable 4-insn head whose branch
  /// exits forward, straight-line body, back-edge Jump — iterated
  /// entirely in C++. fault = 0 resumes at the branch target, 1 = fault
  /// parked, 2 = within one iteration of the step budget (the emitted
  /// exact fallback takes over with the returned remaining).
  const void* loop = nullptr;
  /// uint64_t(Vm*, const Insn*): ReturnOp; result is the bytecode pc to
  /// resume at, or ~0 on fault.
  const void* return_op = nullptr;
  /// uint32_t(Vm*, const Insn*): a fused 4-insn loop head; 0 = branch
  /// not taken, 1 = taken, 2 = fault.
  const void* fused_head = nullptr;
  /// uint32_t(const Value*): shared truthiness of a float-typed value
  /// (the inline conditional-jump template handles int/pointer itself).
  const void* value_truthy = nullptr;
  /// void(Vm*): park the step-limit fault (never returns normally a
  /// value; always parks).
  const void* step_fault = nullptr;
};

struct OpStats {
  uint64_t count = 0;  ///< instructions of this opcode compiled
  uint64_t bytes = 0;  ///< native bytes emitted for them
};

struct JitStats {
  OpStats per_op[sim::kNumOps];
  uint64_t fused_heads = 0;       ///< 4-insn loop heads fused
  uint64_t block_runs = 0;        ///< straight-line runs behind one call
  uint64_t self_loops = 0;        ///< whole loops iterated inside C++
  uint64_t total_code_bytes = 0;  ///< whole mapping, prologue included
  uint64_t num_insns = 0;         ///< bytecode instructions compiled
};

/// A finalized (read-execute) native image of one CompiledProgram.
/// Independent of RunOptions and of the sink type it was compiled
/// against only through the handler table burned into the code, so it
/// is reusable across runs exactly like the CompiledProgram it mirrors.
class CompiledNative {
 public:
  /// uint64_t entry(Vm* vm, void* const* pc_table, uint64_t remaining);
  /// returns the final value of the step down-counter.
  const void* entry() const { return mem_.data(); }
  /// Native address of every bytecode pc (ReturnOp's indirect dispatch).
  void* const* pc_table() const { return pc_table_.data(); }
  const JitStats& stats() const { return stats_; }

 private:
  friend util::Status compile_native(const sim::CompiledProgram&,
                                     const JitHandlers&, const JitLayout&,
                                     std::unique_ptr<CompiledNative>*);
  ExecMemory mem_;
  std::vector<void*> pc_table_;
  JitStats stats_;
};

/// Compiles `code` to native; classified failure (never a throw) when
/// the platform is unsupported or the executable mapping fails — the
/// caller falls back to the bytecode VM.
util::Status compile_native(const sim::CompiledProgram& code,
                            const JitHandlers& handlers,
                            const JitLayout& layout,
                            std::unique_ptr<CompiledNative>* out);

/// When enabled (CLI --dump-jit), every compile_native() prints a
/// per-opcode blob-size table and the total code bytes to stderr.
void set_dump_jit(bool enabled);
bool dump_jit_enabled();

}  // namespace foray::jit
