#include "jit/compiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "jit/assembler.h"

namespace foray::jit {

namespace {

bool g_dump_jit = false;

// Register conventions inside emitted code (SysV AMD64):
//   r13  Vm<SinkT>*                      (callee-saved, live across calls)
//   r14  remaining-steps down-counter    (borrow on decrement = step fault)
//   r12  pc -> native-address table      (ReturnOp's indirect dispatch)
//   rax/rcx/rdx/rsi/rdi                  scratch (caller-saved)
// The operand stack pointer (Vm::sp_) is deliberately NOT register-
// cached: handler calls may grow the operand stack and rewrite it.
constexpr R64 kVm = R64::r13;
constexpr R64 kSteps = R64::r14;
constexpr R64 kPcTable = R64::r12;

/// First/second slots of a fusable loop head: cheap, fault-light pushes.
bool fusable_operand(sim::Op op) {
  return op == sim::Op::PushInt || op == sim::Op::LoadLocal ||
         op == sim::Op::LoadGlobal;
}

/// Opcodes the block fusion may swallow (never redirect the pc).
bool is_blockable(sim::Op op) {
  switch (op) {
#define FORAY_JIT_BLOCK_CASE(name) case sim::Op::name:
    FORAY_JIT_BLOCK_OPS(FORAY_JIT_BLOCK_CASE)
#undef FORAY_JIT_BLOCK_CASE
    return true;
    default:
      return false;
  }
}

struct PcFixup {
  size_t rel32_at;
  uint32_t target_pc;
};

class Emitter {
 public:
  Emitter(const sim::CompiledProgram& code, const JitHandlers& handlers,
          const JitLayout& layout, JitStats* stats)
      : code_(code), h_(handlers), l_(layout), stats_(stats) {}

  util::Status emit(std::vector<uint8_t>* out_bytes,
                    std::vector<size_t>* out_native_off);

 private:
  util::Status emit_prologue();
  void emit_epilogue_and_stubs();
  /// The exact VM dispatch prefix: line store + per-instruction step
  /// decrement; a borrow means this instruction is one past the budget.
  void emit_step_prefix(const sim::Insn& insn);
  /// Default shape: direct call into the shared do_<Op>() body.
  util::Status emit_handler_call(uint32_t pc, const sim::Insn& insn);
  util::Status emit_one(uint32_t pc);
  util::Status emit_fused_head(uint32_t pc);
  util::Status emit_block(uint32_t pc, uint32_t len);
  util::Status emit_self_loop(uint32_t pc, uint32_t body_len);
  /// Body length (>= 1) when `pc` heads a whole fusable self-loop:
  /// fusable 4-insn head whose branch exits forward, straight-line
  /// blockable body with no interior jump targets, back-edge Jump to
  /// `pc` right before the exit target. 0 otherwise.
  uint32_t self_loop_body_len(uint32_t pc) const;
  /// Length of the maximal straight-line run at `pc`: consecutive
  /// blockable opcodes with no interior jump target.
  uint32_t block_run_len(uint32_t pc) const;
  void emit_push_prelude();  ///< rax = sp_
  void emit_push_finish();   ///< sp_ = rax + sizeof(Value)
  void emit_cond_jump(uint32_t pc, const sim::Insn& insn);

  bool is_fusable_head(uint32_t pc) const;

  const sim::CompiledProgram& code_;
  const JitHandlers& h_;
  const JitLayout& l_;
  JitStats* stats_;
  Assembler as_;
  std::vector<char> is_target_;
  std::vector<PcFixup> pc_fixups_;
  std::vector<size_t> step_fixups_;
  std::vector<size_t> epi_fixups_;
  std::vector<size_t> native_off_;
};

util::Status Emitter::emit_prologue() {
  // uint64_t entry(Vm* rdi, void* const* pc_table rsi, uint64_t rem rdx)
  as_.push_r(R64::rbp);
  as_.push_r(R64::rbx);
  as_.push_r(R64::r12);
  as_.push_r(R64::r13);
  as_.push_r(R64::r14);
  as_.push_r(R64::r15);
  as_.sub_ri8(R64::rsp, 8);  // 6 pushes + ret addr: realign to 16
  as_.mov_rr(kVm, R64::rdi);
  as_.mov_rr(kPcTable, R64::rsi);
  as_.mov_rr(kSteps, R64::rdx);
  pc_fixups_.push_back({as_.jmp(), code_.start_pc});
  return util::Status();
}

void Emitter::emit_epilogue_and_stubs() {
  // Step-limit stub: park the classified fault on the Vm, then fall
  // into the epilogue with the borrowed counter (steps = max + 1).
  const size_t step_stub = as_.here();
  as_.mov_rr(R64::rdi, kVm);
  as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(h_.step_fault));
  as_.call_r(R64::rax);
  const size_t epilogue = as_.here();
  as_.mov_rr(R64::rax, kSteps);
  as_.add_ri8(R64::rsp, 8);
  as_.pop_r(R64::r15);
  as_.pop_r(R64::r14);
  as_.pop_r(R64::r13);
  as_.pop_r(R64::r12);
  as_.pop_r(R64::rbx);
  as_.pop_r(R64::rbp);
  as_.ret();
  for (size_t at : step_fixups_) as_.patch_rel32(at, step_stub);
  for (size_t at : epi_fixups_) as_.patch_rel32(at, epilogue);
}

void Emitter::emit_step_prefix(const sim::Insn& insn) {
  as_.store_mi32(kVm, static_cast<int32_t>(l_.off_cur_line),
                 static_cast<uint32_t>(insn.line));
  as_.sub_ri8(kSteps, 1);
  step_fixups_.push_back(as_.jcc(Cond::b));
}

util::Status Emitter::emit_handler_call(uint32_t pc, const sim::Insn& insn) {
  const void* handler = h_.op[static_cast<size_t>(insn.op)];
  if (handler == nullptr) {
    return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                                 "missing handler for opcode");
  }
  as_.mov_rr(R64::rdi, kVm);
  as_.mov_ri64(R64::rsi, reinterpret_cast<uint64_t>(&code_.code[pc]));
  as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(handler));
  as_.call_r(R64::rax);
  as_.test32_rr(R64::rax, R64::rax);
  epi_fixups_.push_back(as_.jcc(Cond::ne));
  return util::Status();
}

void Emitter::emit_push_prelude() {
  as_.load_rm(R64::rax, kVm, static_cast<int32_t>(l_.off_sp));
}

void Emitter::emit_push_finish() {
  as_.add_ri8(R64::rax, static_cast<int8_t>(l_.value_size));
  as_.store_mr(kVm, static_cast<int32_t>(l_.off_sp), R64::rax);
}

/// Pops the condition value (rax points at it afterwards) and branches:
/// integers/pointers compare inline against zero; float-typed values go
/// through the shared value_truthy helper on a cold path.
void Emitter::emit_cond_jump(uint32_t pc, const sim::Insn& insn) {
  const bool jump_on_true = insn.op == sim::Op::JumpIfTrue;
  const Cond take = jump_on_true ? Cond::ne : Cond::e;
  as_.load_rm(R64::rax, kVm, static_cast<int32_t>(l_.off_sp));
  as_.sub_ri8(R64::rax, static_cast<int8_t>(l_.value_size));
  as_.store_mr(kVm, static_cast<int32_t>(l_.off_sp), R64::rax);
  as_.cmp_m8_i8(R64::rax, static_cast<int32_t>(l_.val_off_base),
                l_.base_float);
  const size_t to_int1 = as_.jcc(Cond::ne);
  as_.cmp32_mi8(R64::rax, static_cast<int32_t>(l_.val_off_ptr), 0);
  const size_t to_int2 = as_.jcc(Cond::ne);
  // Float-typed scalar: shared truthiness (f != 0.0, NaN included).
  as_.mov_rr(R64::rdi, R64::rax);
  as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(h_.value_truthy));
  as_.call_r(R64::rax);
  as_.test32_rr(R64::rax, R64::rax);
  pc_fixups_.push_back({as_.jcc(take), insn.a});
  pc_fixups_.push_back({as_.jmp(), pc + 1});
  const size_t int_path = as_.here();
  as_.patch_rel32(to_int1, int_path);
  as_.patch_rel32(to_int2, int_path);
  as_.cmp_mi8(R64::rax, static_cast<int32_t>(l_.val_off_i), 0);
  pc_fixups_.push_back({as_.jcc(take), insn.a});
  // Fall through to the pc+1 blob.
}

util::Status Emitter::emit_one(uint32_t pc) {
  const sim::Insn& insn = code_.code[pc];
  emit_step_prefix(insn);
  switch (insn.op) {
    case sim::Op::PushInt: {
      emit_push_prelude();
      as_.store_mi32sx(R64::rax, 0, l_.base_int);  // type = scalar int
      as_.mov_ri64(R64::rcx,
                   static_cast<uint64_t>(code_.int_pool[insn.a]));
      as_.store_mr(R64::rax, static_cast<int32_t>(l_.val_off_i), R64::rcx);
      as_.store_mi32sx(R64::rax, static_cast<int32_t>(l_.val_off_f), 0);
      emit_push_finish();
      break;
    }
    case sim::Op::PushFloat: {
      uint64_t bits = 0;
      const double v = code_.float_pool[insn.a];
      std::memcpy(&bits, &v, sizeof(bits));
      emit_push_prelude();
      as_.store_mi32sx(R64::rax, 0, l_.base_float);
      as_.store_mi32sx(R64::rax, static_cast<int32_t>(l_.val_off_i), 0);
      as_.mov_ri64(R64::rcx, bits);
      as_.store_mr(R64::rax, static_cast<int32_t>(l_.val_off_f), R64::rcx);
      emit_push_finish();
      break;
    }
    case sim::Op::PopV:
      as_.sub_mi8(kVm, static_cast<int32_t>(l_.off_sp),
                  static_cast<int8_t>(l_.value_size));
      break;
    case sim::Op::PushSlotAddr:
    case sim::Op::PushGlobalSlotAddr: {
      if (insn.a > (1u << 20)) return emit_handler_call(pc, insn);
      const uint32_t base_off = insn.op == sim::Op::PushSlotAddr
                                    ? l_.off_cur_locals
                                    : l_.off_globals_raw;
      as_.load_rm(R64::rcx, kVm, static_cast<int32_t>(base_off));
      as_.load32_rm(R64::rcx, R64::rcx,
                    static_cast<int32_t>(insn.a * l_.slot_size +
                                         l_.slot_off_addr));
      if (insn.b != 0) as_.add32_ri(R64::rcx, insn.b);
      emit_push_prelude();
      as_.store_mi32sx(R64::rax, 0, l_.base_int);
      as_.store_mr(R64::rax, static_cast<int32_t>(l_.val_off_i), R64::rcx);
      as_.store_mi32sx(R64::rax, static_cast<int32_t>(l_.val_off_f), 0);
      emit_push_finish();
      break;
    }
    case sim::Op::Jump:
      pc_fixups_.push_back({as_.jmp(), insn.a});
      break;
    case sim::Op::JumpIfFalse:
    case sim::Op::JumpIfTrue:
      emit_cond_jump(pc, insn);
      break;
    case sim::Op::CallFn: {
      if (util::Status st = emit_handler_call(pc, insn); !st.ok()) return st;
      // The callee entry is static: direct jump, no dispatch.
      pc_fixups_.push_back({as_.jmp(), code_.funcs[insn.a].entry});
      break;
    }
    case sim::Op::ReturnOp: {
      as_.mov_rr(R64::rdi, kVm);
      as_.mov_ri64(R64::rsi, reinterpret_cast<uint64_t>(&code_.code[pc]));
      as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(h_.return_op));
      as_.call_r(R64::rax);
      as_.cmp_ri8(R64::rax, -1);
      epi_fixups_.push_back(as_.jcc(Cond::e));
      as_.jmp_mem_index8(kPcTable, R64::rax);
      break;
    }
    case sim::Op::Halt: {
      if (util::Status st = emit_handler_call(pc, insn); !st.ok()) return st;
      epi_fixups_.push_back(as_.jmp());
      break;
    }
    case sim::Op::ThrowUnbound: {
      const void* handler = h_.op[static_cast<size_t>(insn.op)];
      as_.mov_rr(R64::rdi, kVm);
      as_.mov_ri64(R64::rsi, reinterpret_cast<uint64_t>(&code_.code[pc]));
      as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(handler));
      as_.call_r(R64::rax);
      epi_fixups_.push_back(as_.jmp());  // always parks a fault
      break;
    }
    default:
      return emit_handler_call(pc, insn);
  }
  return util::Status();
}

bool Emitter::is_fusable_head(uint32_t pc) const {
  const uint32_t n = static_cast<uint32_t>(code_.code.size());
  if (pc + 4 >= n) return false;
  const sim::Insn* i = &code_.code[pc];
  if (!fusable_operand(i[0].op) || !fusable_operand(i[1].op)) return false;
  if (i[2].op != sim::Op::Binary) return false;
  if (i[3].op != sim::Op::JumpIfFalse && i[3].op != sim::Op::JumpIfTrue) {
    return false;
  }
  // No interior jump targets: the group dispatches as one unit.
  return !is_target_[pc + 1] && !is_target_[pc + 2] && !is_target_[pc + 3];
}

/// A fused loop head: [push/load][push/load][Binary][JumpIf*] behind one
/// handler call. Guarded by `remaining >= 4`; within 4 steps of the
/// budget the cold path replays the same four instructions unfused, so
/// step-limit faults keep per-instruction exactness. (A non-step fault
/// inside the fused handler leaves up to 3 pre-claimed steps counted —
/// the run is failing anyway, and step totals are not part of the
/// engine-equivalence contract.)
util::Status Emitter::emit_fused_head(uint32_t pc) {
  const sim::Insn& branch = code_.code[pc + 3];
  const bool jump_on_true = branch.op == sim::Op::JumpIfTrue;
  as_.cmp_ri8(kSteps, 4);
  const size_t to_fast = as_.jcc(Cond::ae);
  for (uint32_t k = 0; k < 4; ++k) {
    if (util::Status st = emit_one(pc + k); !st.ok()) return st;
  }
  pc_fixups_.push_back({as_.jmp(), pc + 4});
  as_.patch_rel32(to_fast, as_.here());
  as_.sub_ri8(kSteps, 4);
  as_.mov_rr(R64::rdi, kVm);
  as_.mov_ri64(R64::rsi, reinterpret_cast<uint64_t>(&code_.code[pc]));
  as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(h_.fused_head));
  as_.call_r(R64::rax);
  as_.cmp32_ri8(R64::rax, 2);
  epi_fixups_.push_back(as_.jcc(Cond::e));
  as_.test32_rr(R64::rax, R64::rax);
  pc_fixups_.push_back(
      {as_.jcc(jump_on_true ? Cond::ne : Cond::e), branch.a});
  // Fall through to the pc+4 blob.
  return util::Status();
}

uint32_t Emitter::block_run_len(uint32_t pc) const {
  const uint32_t n = static_cast<uint32_t>(code_.code.size());
  uint32_t len = 0;
  // Capped at 127 so the step guard fits the imm8 compare; longer runs
  // simply split into consecutive blocks.
  while (len < 127 && pc + len < n &&
         is_blockable(code_.code[pc + len].op) &&
         (len == 0 || !is_target_[pc + len])) {
    ++len;
  }
  return len;
}

/// A straight-line run behind one handler call. The hot path pre-claims
/// all `len` steps (`remaining >= len` guard) and calls h_block_fast,
/// whose loop carries no step accounting at all; within `len` steps of
/// the budget the cold path calls h_block, which counts and faults per
/// instruction, exactly like the VM. Lines are stored per instruction
/// inside both handlers, so trace records and fault lines are exact on
/// either path.
util::Status Emitter::emit_block(uint32_t pc, uint32_t len) {
  as_.cmp_ri8(kSteps, static_cast<int8_t>(len));
  const size_t to_cold = as_.jcc(Cond::b);
  as_.sub_ri8(kSteps, static_cast<int8_t>(len));
  as_.mov_rr(R64::rdi, kVm);
  as_.mov_ri64(R64::rsi, reinterpret_cast<uint64_t>(&code_.code[pc]));
  as_.mov_ri64(R64::rdx, len);
  as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(h_.block_fast));
  as_.call_r(R64::rax);
  as_.test32_rr(R64::rax, R64::rax);
  epi_fixups_.push_back(as_.jcc(Cond::ne));
  const size_t over_cold = as_.jmp();
  as_.patch_rel32(to_cold, as_.here());
  as_.mov_rr(R64::rdi, kVm);
  as_.mov_ri64(R64::rsi, reinterpret_cast<uint64_t>(&code_.code[pc]));
  as_.mov_ri64(R64::rdx, len);
  as_.mov_rr(R64::rcx, kSteps);
  as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(h_.block));
  as_.call_r(R64::rax);
  as_.mov_rr(kSteps, R64::rax);  // BlockExit.remaining
  as_.test32_rr(R64::rdx, R64::rdx);  // BlockExit.fault
  epi_fixups_.push_back(as_.jcc(Cond::ne));
  as_.patch_rel32(over_cold, as_.here());
  return util::Status();
}

uint32_t Emitter::self_loop_body_len(uint32_t pc) const {
  if (!is_fusable_head(pc)) return 0;
  const uint32_t n = static_cast<uint32_t>(code_.code.size());
  const uint32_t exit_pc = code_.code[pc + 3].a;
  if (exit_pc >= n || exit_pc < pc + 6) return 0;  // need a >= 1-insn body
  const uint32_t back_pc = exit_pc - 1;
  const sim::Insn& back = code_.code[back_pc];
  if (back.op != sim::Op::Jump || back.a != pc) return 0;
  if (is_target_[back_pc]) return 0;
  for (uint32_t q = pc + 4; q < back_pc; ++q) {
    if (!is_blockable(code_.code[q].op) || is_target_[q]) return 0;
  }
  return back_pc - (pc + 4);
}

/// A whole self-loop behind one handler call that iterates in C++: per
/// full iteration there are zero emitted-code transitions and one bulk
/// step claim per segment, guarded inside the handler. The handler
/// returns control when the branch exits (resume at its target), a
/// fault parks, or the budget is within one iteration — in which case
/// the exact fallback below (fused head + block runs + back jump, each
/// already exact at the budget edge) finishes the loop instruction by
/// instruction. The fallback's back edge re-enters the handler, which
/// immediately defers again, so the edge path stays exact without ever
/// looping natively. Sets native_off_ itself: the head pcs resolve to
/// the handler call, interior pcs to their fallback segments (the fused
/// head's cold path falls through to pc+4, which must not re-enter the
/// loop handler).
util::Status Emitter::emit_self_loop(uint32_t pc, uint32_t body_len) {
  const uint32_t back_pc = pc + 4 + body_len;
  const sim::Insn& branch = code_.code[pc + 3];
  const size_t head = as_.here();
  for (uint32_t k = 0; k < 4; ++k) native_off_[pc + k] = head;
  as_.mov_rr(R64::rdi, kVm);
  as_.mov_ri64(R64::rsi, reinterpret_cast<uint64_t>(&code_.code[pc]));
  as_.mov_ri64(R64::rdx, body_len);
  as_.mov_rr(R64::rcx, kSteps);
  as_.mov_ri64(R64::rax, reinterpret_cast<uint64_t>(h_.loop));
  as_.call_r(R64::rax);
  as_.mov_rr(kSteps, R64::rax);  // BlockExit.remaining
  as_.cmp_ri8(R64::rdx, 1);      // BlockExit.fault: exit kind
  epi_fixups_.push_back(as_.jcc(Cond::e));  // 1 = fault parked
  as_.cmp_ri8(R64::rdx, 0);
  pc_fixups_.push_back({as_.jcc(Cond::e), branch.a});  // 0 = branch taken
  // Kind 2: within one iteration of the step budget — exact fallback.
  if (util::Status st = emit_fused_head(pc); !st.ok()) return st;
  uint32_t q = pc + 4;
  while (q < back_pc) {
    const uint32_t chunk = std::min<uint32_t>(127, back_pc - q);
    const size_t seg = as_.here();
    for (uint32_t k = 0; k < chunk; ++k) native_off_[q + k] = seg;
    if (util::Status st = emit_block(q, chunk); !st.ok()) return st;
    q += chunk;
  }
  native_off_[back_pc] = as_.here();
  emit_step_prefix(code_.code[back_pc]);
  pc_fixups_.push_back({as_.jmp(), pc});
  return util::Status();
}

util::Status Emitter::emit(std::vector<uint8_t>* out_bytes,
                           std::vector<size_t>* out_native_off) {
  const uint32_t n = static_cast<uint32_t>(code_.code.size());
  if (n == 0) {
    return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                                 "empty bytecode program");
  }
  if (h_.return_op == nullptr || h_.fused_head == nullptr ||
      h_.block == nullptr || h_.block_fast == nullptr ||
      h_.loop == nullptr || h_.value_truthy == nullptr ||
      h_.step_fault == nullptr) {
    return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                                 "incomplete jit handler table");
  }
  if (l_.value_size == 0 || l_.value_size > 127 || l_.slot_size == 0) {
    return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                                 "jit layout not measured");
  }

  is_target_.assign(n, 0);
  is_target_[code_.start_pc] = 1;
  for (uint32_t pc = 0; pc < n; ++pc) {
    const sim::Insn& insn = code_.code[pc];
    switch (insn.op) {
      case sim::Op::Jump:
      case sim::Op::JumpIfFalse:
      case sim::Op::JumpIfTrue:
        if (insn.a < n) is_target_[insn.a] = 1;
        break;
      case sim::Op::CallFn:
        if (pc + 1 < n) is_target_[pc + 1] = 1;  // ReturnOp resumes here
        break;
      default:
        break;
    }
  }
  for (const sim::CompiledFunc& f : code_.funcs) {
    if (f.entry < n) is_target_[f.entry] = 1;
  }

  native_off_.assign(n, 0);
  if (util::Status st = emit_prologue(); !st.ok()) return st;
  for (uint32_t pc = 0; pc < n;) {
    const size_t start = as_.here();
    const sim::Op op = code_.code[pc].op;
    uint32_t consumed = 1;
    sim::Op bytes_op = op;  ///< which per_op row gets the emitted bytes
    bool offsets_set = false;
    util::Status st;
    if (const uint32_t body = self_loop_body_len(pc)) {
      st = emit_self_loop(pc, body);
      consumed = 4 + body + 1;  // head + body + back-edge Jump
      bytes_op = code_.code[pc + 3].op;
      stats_->self_loops++;
      offsets_set = true;  // emit_self_loop places its own offsets
    } else if (is_fusable_head(pc)) {
      st = emit_fused_head(pc);
      consumed = 4;
      bytes_op = code_.code[pc + 3].op;  // named after the branch
      stats_->fused_heads++;
    } else if (const uint32_t run = block_run_len(pc); run >= 2) {
      st = emit_block(pc, run);
      consumed = run;  // bytes stay on the first op's row
      stats_->block_runs++;
    } else {
      st = emit_one(pc);
    }
    if (!st.ok()) return st;
    const uint64_t bytes = as_.here() - start;
    for (uint32_t k = 0; k < consumed; ++k) {
      // Interior pcs of a fused group or block run are never jump
      // targets; their table entries point at the head for safety.
      if (!offsets_set) native_off_[pc + k] = start;
      stats_->per_op[static_cast<size_t>(code_.code[pc + k].op)].count++;
    }
    stats_->per_op[static_cast<size_t>(bytes_op)].bytes += bytes;
    stats_->num_insns += consumed;
    pc += consumed;
  }
  emit_epilogue_and_stubs();
  for (const PcFixup& f : pc_fixups_) {
    if (f.target_pc >= n) {
      return util::Status::failure(util::ErrorCode::kInternal, "jit", 0,
                                   "jump target outside program");
    }
    as_.patch_rel32(f.rel32_at, native_off_[f.target_pc]);
  }
  stats_->total_code_bytes = as_.here();
  *out_bytes = as_.bytes();
  *out_native_off = native_off_;
  return util::Status();
}

const char* op_name(size_t op) {
#define FORAY_JIT_OP_NAME(name) \
  if (op == static_cast<size_t>(sim::Op::name)) return #name;
  FORAY_VM_OPS(FORAY_JIT_OP_NAME)
#undef FORAY_JIT_OP_NAME
  return "?";
}

void dump_stats(const JitStats& stats) {
  std::fprintf(stderr, "jit: %-18s %10s %12s\n", "opcode", "count",
               "code bytes");
  for (size_t op = 0; op < sim::kNumOps; ++op) {
    if (stats.per_op[op].count == 0) continue;
    std::fprintf(stderr, "jit: %-18s %10llu %12llu\n", op_name(op),
                 static_cast<unsigned long long>(stats.per_op[op].count),
                 static_cast<unsigned long long>(stats.per_op[op].bytes));
  }
  std::fprintf(
      stderr,
      "jit: %llu insns, %llu self-loops, %llu fused loop heads, "
      "%llu block runs, %llu code bytes\n",
      static_cast<unsigned long long>(stats.num_insns),
      static_cast<unsigned long long>(stats.self_loops),
      static_cast<unsigned long long>(stats.fused_heads),
      static_cast<unsigned long long>(stats.block_runs),
      static_cast<unsigned long long>(stats.total_code_bytes));
}

}  // namespace

void set_dump_jit(bool enabled) { g_dump_jit = enabled; }
bool dump_jit_enabled() { return g_dump_jit; }

util::Status compile_native(const sim::CompiledProgram& code,
                            const JitHandlers& handlers,
                            const JitLayout& layout,
                            std::unique_ptr<CompiledNative>* out) {
  if (!jit_supported()) {
    return util::Status::failure(
        util::ErrorCode::kInvalidInput, "jit", 0,
        "the jit engine supports x86-64 Linux/macOS only on this build");
  }
  auto native = std::make_unique<CompiledNative>();
  std::vector<uint8_t> bytes;
  std::vector<size_t> native_off;
  Emitter emitter(code, handlers, layout, &native->stats_);
  if (util::Status st = emitter.emit(&bytes, &native_off); !st.ok()) {
    return st;
  }
  if (util::Status st = ExecMemory::allocate(bytes.size(), &native->mem_);
      !st.ok()) {
    return st;
  }
  std::memcpy(native->mem_.data(), bytes.data(), bytes.size());
  if (util::Status st = native->mem_.finalize(); !st.ok()) return st;
  native->pc_table_.resize(native_off.size());
  for (size_t pc = 0; pc < native_off.size(); ++pc) {
    native->pc_table_[pc] = native->mem_.data() + native_off[pc];
  }
  if (dump_jit_enabled()) dump_stats(native->stats_);
  *out = std::move(native);
  return util::Status();
}

}  // namespace foray::jit
