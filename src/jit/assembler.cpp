#include "jit/assembler.h"

namespace foray::jit {

namespace {
uint8_t lo3(R64 r) { return static_cast<uint8_t>(r) & 7; }
bool ext(R64 r) { return static_cast<uint8_t>(r) >= 8; }
}  // namespace

void Assembler::u32(uint32_t v) {
  u8(static_cast<uint8_t>(v));
  u8(static_cast<uint8_t>(v >> 8));
  u8(static_cast<uint8_t>(v >> 16));
  u8(static_cast<uint8_t>(v >> 24));
}

void Assembler::u64(uint64_t v) {
  u32(static_cast<uint32_t>(v));
  u32(static_cast<uint32_t>(v >> 32));
}

void Assembler::rex(bool wide, bool reg_ext, bool index_ext, bool base_ext) {
  const uint8_t b = 0x40 | (wide ? 0x08 : 0) | (reg_ext ? 0x04 : 0) |
                    (index_ext ? 0x02 : 0) | (base_ext ? 0x01 : 0);
  // A bare 0x40 REX changes nothing for the forms used here; skip it.
  if (b != 0x40) u8(b);
}

void Assembler::mem_operand(uint8_t reg_field, R64 base, int32_t disp) {
  // Uniform mod=10 ([base + disp32]); rsp/r12 bases require a SIB byte
  // whose base field repeats the register (no index).
  u8(0x80 | (reg_field << 3) | lo3(base));
  if (lo3(base) == 4) u8(0x24);
  u32(static_cast<uint32_t>(disp));
}

void Assembler::reg_operand(uint8_t reg_field, R64 rm) {
  u8(0xC0 | (reg_field << 3) | lo3(rm));
}

void Assembler::mov_rr(R64 dst, R64 src) {
  rex(true, ext(src), false, ext(dst));
  u8(0x89);
  reg_operand(lo3(src), dst);
}

void Assembler::mov_ri64(R64 dst, uint64_t imm) {
  rex(true, false, false, ext(dst));
  u8(0xB8 + lo3(dst));
  u64(imm);
}

void Assembler::load_rm(R64 dst, R64 base, int32_t disp) {
  rex(true, ext(dst), false, ext(base));
  u8(0x8B);
  mem_operand(lo3(dst), base, disp);
}

void Assembler::store_mr(R64 base, int32_t disp, R64 src) {
  rex(true, ext(src), false, ext(base));
  u8(0x89);
  mem_operand(lo3(src), base, disp);
}

void Assembler::load32_rm(R64 dst, R64 base, int32_t disp) {
  rex(false, ext(dst), false, ext(base));
  u8(0x8B);
  mem_operand(lo3(dst), base, disp);
}

void Assembler::store_mi32(R64 base, int32_t disp, uint32_t imm) {
  rex(false, false, false, ext(base));
  u8(0xC7);
  mem_operand(0, base, disp);
  u32(imm);
}

void Assembler::store_mi32sx(R64 base, int32_t disp, int32_t imm) {
  rex(true, false, false, ext(base));
  u8(0xC7);
  mem_operand(0, base, disp);
  u32(static_cast<uint32_t>(imm));
}

void Assembler::add32_ri(R64 dst, uint32_t imm) {
  rex(false, false, false, ext(dst));
  u8(0x81);
  reg_operand(0, dst);
  u32(imm);
}

void Assembler::add_ri8(R64 dst, int8_t imm) {
  rex(true, false, false, ext(dst));
  u8(0x83);
  reg_operand(0, dst);
  u8(static_cast<uint8_t>(imm));
}

void Assembler::sub_ri8(R64 dst, int8_t imm) {
  rex(true, false, false, ext(dst));
  u8(0x83);
  reg_operand(5, dst);
  u8(static_cast<uint8_t>(imm));
}

void Assembler::sub_mi8(R64 base, int32_t disp, int8_t imm) {
  rex(true, false, false, ext(base));
  u8(0x83);
  mem_operand(5, base, disp);
  u8(static_cast<uint8_t>(imm));
}

void Assembler::cmp_ri8(R64 reg, int8_t imm) {
  rex(true, false, false, ext(reg));
  u8(0x83);
  reg_operand(7, reg);
  u8(static_cast<uint8_t>(imm));
}

void Assembler::cmp32_ri8(R64 reg, int8_t imm) {
  rex(false, false, false, ext(reg));
  u8(0x83);
  reg_operand(7, reg);
  u8(static_cast<uint8_t>(imm));
}

void Assembler::cmp_m8_i8(R64 base, int32_t disp, uint8_t imm) {
  rex(false, false, false, ext(base));
  u8(0x80);
  mem_operand(7, base, disp);
  u8(imm);
}

void Assembler::cmp32_mi8(R64 base, int32_t disp, int8_t imm) {
  rex(false, false, false, ext(base));
  u8(0x83);
  mem_operand(7, base, disp);
  u8(static_cast<uint8_t>(imm));
}

void Assembler::cmp_mi8(R64 base, int32_t disp, int8_t imm) {
  rex(true, false, false, ext(base));
  u8(0x83);
  mem_operand(7, base, disp);
  u8(static_cast<uint8_t>(imm));
}

void Assembler::test32_rr(R64 a, R64 b) {
  rex(false, ext(b), false, ext(a));
  u8(0x85);
  reg_operand(lo3(b), a);
}

void Assembler::call_r(R64 reg) {
  rex(false, false, false, ext(reg));
  u8(0xFF);
  reg_operand(2, reg);
}

void Assembler::jmp_mem_index8(R64 base, R64 index) {
  rex(false, false, ext(index), ext(base));
  u8(0xFF);
  if (lo3(base) == 5) {
    // rbp/r13 cannot be a SIB base with mod=00; use disp8 = 0.
    u8(0x64);  // mod=01, reg=/4, rm=SIB
    u8(0xC0 | (lo3(index) << 3) | lo3(base));
    u8(0x00);
  } else {
    u8(0x24);  // mod=00, reg=/4, rm=SIB
    u8(0xC0 | (lo3(index) << 3) | lo3(base));
  }
}

void Assembler::push_r(R64 reg) {
  rex(false, false, false, ext(reg));
  u8(0x50 + lo3(reg));
}

void Assembler::pop_r(R64 reg) {
  rex(false, false, false, ext(reg));
  u8(0x58 + lo3(reg));
}

void Assembler::ret() { u8(0xC3); }

size_t Assembler::jcc(Cond cc) {
  u8(0x0F);
  u8(0x80 | static_cast<uint8_t>(cc));
  const size_t at = here();
  u32(0);
  return at;
}

size_t Assembler::jmp() {
  u8(0xE9);
  const size_t at = here();
  u32(0);
  return at;
}

void Assembler::patch_rel32(size_t rel32_at, size_t target) {
  const int64_t rel =
      static_cast<int64_t>(target) - static_cast<int64_t>(rel32_at + 4);
  const uint32_t enc = static_cast<uint32_t>(static_cast<int32_t>(rel));
  buf_[rel32_at + 0] = static_cast<uint8_t>(enc);
  buf_[rel32_at + 1] = static_cast<uint8_t>(enc >> 8);
  buf_[rel32_at + 2] = static_cast<uint8_t>(enc >> 16);
  buf_[rel32_at + 3] = static_cast<uint8_t>(enc >> 24);
}

}  // namespace foray::jit
