// W^X executable-memory allocator for the template JIT.
//
// Code is emitted into an ordinary byte vector (every intra-buffer
// reference is rel32, so the blob is position-independent), then copied
// into a page-aligned mapping that is writable-XOR-executable over its
// lifetime: mapped read-write, filled, then flipped to read-execute by
// finalize(). The mapping is never writable and executable at once.
//
// Platform support is deliberately narrow — x86-64 SysV (Linux/macOS),
// matching the instruction encodings in jit/assembler.h. Everywhere
// else, and on any mmap/mprotect failure, allocation returns a
// classified util::Status; the engine layer (jit/engine.h) turns that
// into a bytecode-VM fallback, never a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/status.h"

namespace foray::jit {

/// True when this build can emit and run native code (compile-time
/// platform gate; individual mappings can still fail at runtime).
bool jit_supported();

class ExecMemory {
 public:
  ExecMemory() = default;
  ~ExecMemory() { release(); }

  ExecMemory(ExecMemory&& other) noexcept { *this = std::move(other); }
  ExecMemory& operator=(ExecMemory&& other) noexcept {
    if (this != &other) {
      release();
      base_ = other.base_;
      size_ = other.size_;
      other.base_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ExecMemory(const ExecMemory&) = delete;
  ExecMemory& operator=(const ExecMemory&) = delete;

  /// Maps `bytes` of read-write memory into *this. Classified failure on
  /// unsupported platforms (kInvalidInput: the caller asked for an
  /// engine this build cannot provide) and on mapping errors (kIoError).
  static util::Status allocate(size_t bytes, ExecMemory* out);

  /// Flips the mapping read-execute and syncs the instruction cache.
  util::Status finalize();

  uint8_t* data() { return static_cast<uint8_t*>(base_); }
  const uint8_t* data() const { return static_cast<const uint8_t*>(base_); }
  size_t size() const { return size_; }

 private:
  void release();

  void* base_ = nullptr;
  size_t size_ = 0;
};

}  // namespace foray::jit
