// A minimal x86-64 instruction encoder for the template JIT.
//
// Emits into a growable byte buffer; nothing here knows about pages or
// protection (jit/exec_memory.h owns that). The instruction menu is
// exactly what the opcode templates in jit/compiler.cpp need — this is
// an encoder, not a general assembler: every method maps to one fixed
// machine-instruction form, memory operands are always [base + disp32]
// (uniform encodings beat minimal ones for a code generator this
// small), and control flow uses rel32 with explicit patching so blobs
// stay position-independent until they are copied into the final
// mapping.
//
// Register conventions are documented in jit/compiler.cpp; encodings
// follow the Intel SDM (REX prefix, ModRM, optional SIB for rsp/r12
// bases).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace foray::jit {

/// x86-64 general-purpose registers, numbered as the hardware does
/// (bit 3 selects the REX extension).
enum class R64 : uint8_t {
  rax = 0,
  rcx = 1,
  rdx = 2,
  rbx = 3,
  rsp = 4,
  rbp = 5,
  rsi = 6,
  rdi = 7,
  r8 = 8,
  r9 = 9,
  r10 = 10,
  r11 = 11,
  r12 = 12,
  r13 = 13,
  r14 = 14,
  r15 = 15,
};

/// Condition codes as the low nibble of the 0F 8x near-jcc opcodes.
enum class Cond : uint8_t {
  b = 0x2,   ///< below (CF=1) — the step-counter borrow check
  ae = 0x3,  ///< above-or-equal (CF=0)
  e = 0x4,   ///< equal / zero
  ne = 0x5,  ///< not equal / not zero
};

class Assembler {
 public:
  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t here() const { return buf_.size(); }

  // -- moves -----------------------------------------------------------------

  void mov_rr(R64 dst, R64 src);            ///< mov dst, src
  void mov_ri64(R64 dst, uint64_t imm);     ///< movabs dst, imm64
  void load_rm(R64 dst, R64 base, int32_t disp);     ///< mov dst, [base+disp]
  void store_mr(R64 base, int32_t disp, R64 src);    ///< mov [base+disp], src
  void load32_rm(R64 dst, R64 base, int32_t disp);   ///< mov dst32, [..]
  void store_mi32(R64 base, int32_t disp, uint32_t imm);  ///< mov dword [..], imm
  /// mov qword [base+disp], imm32 (sign-extended to 64 bits).
  void store_mi32sx(R64 base, int32_t disp, int32_t imm);

  // -- arithmetic / compares -------------------------------------------------

  void add32_ri(R64 dst, uint32_t imm);           ///< add dst32, imm32
  void add_ri8(R64 dst, int8_t imm);              ///< add dst, imm8
  void sub_ri8(R64 dst, int8_t imm);              ///< sub dst, imm8
  void sub_mi8(R64 base, int32_t disp, int8_t imm);  ///< sub qword [..], imm8
  void cmp_ri8(R64 reg, int8_t imm);              ///< cmp reg, imm8
  void cmp32_ri8(R64 reg, int8_t imm);            ///< cmp reg32, imm8
  void cmp_m8_i8(R64 base, int32_t disp, uint8_t imm);   ///< cmp byte [..], imm
  void cmp32_mi8(R64 base, int32_t disp, int8_t imm);    ///< cmp dword [..], imm8
  void cmp_mi8(R64 base, int32_t disp, int8_t imm);      ///< cmp qword [..], imm8
  void test32_rr(R64 a, R64 b);                   ///< test a32, b32

  // -- control flow ----------------------------------------------------------

  void call_r(R64 reg);                       ///< call reg
  void jmp_mem_index8(R64 base, R64 index);   ///< jmp [base + index*8]
  void push_r(R64 reg);
  void pop_r(R64 reg);
  void ret();

  /// Emits `jcc rel32` with a zero placeholder; returns the buffer
  /// offset of the rel32 field for patch_rel32().
  size_t jcc(Cond cc);
  /// Emits `jmp rel32` with a zero placeholder; returns the rel32 offset.
  size_t jmp();
  /// Resolves a rel32 field emitted by jcc()/jmp() to jump to buffer
  /// offset `target`.
  void patch_rel32(size_t rel32_at, size_t target);

  // -- raw bytes -------------------------------------------------------------

  void u8(uint8_t v) { buf_.push_back(v); }
  void u32(uint32_t v);
  void u64(uint64_t v);

 private:
  /// REX prefix for an instruction on 64-bit operands; always emitted
  /// with W=1 unless `wide` is false (32-bit forms that still need
  /// extension bits).
  void rex(bool wide, bool reg_ext, bool index_ext, bool base_ext);
  /// ModRM (+ SIB where the base demands one) for [base + disp32].
  void mem_operand(uint8_t reg_field, R64 base, int32_t disp);
  /// ModRM for register-direct (mod=11).
  void reg_operand(uint8_t reg_field, R64 rm);

  std::vector<uint8_t> buf_;
};

}  // namespace foray::jit
