// Trace serialization.
//
// Two interchangeable encodings:
//  - A text format close to the paper's Figure 4(c) listing, for human
//    inspection and documentation examples.
//  - A compact binary format for the offline-analysis ablation (E9),
//    where trace volume matters.
// Both round-trip exactly (property-tested).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.h"
#include "util/status.h"

namespace foray::trace {

// -- text -------------------------------------------------------------------

/// Renders one record in the paper-like text form, e.g.
///   "Checkpoint: body_begin 15"
///   "Instr: 4002a0 addr: 7fff5934 wr 1 data"
std::string record_to_text(const Record& r);

void write_text(std::ostream& os, const std::vector<Record>& records);

/// Parses the text format. Returns false (and fills diags) on any
/// malformed line; parsing stops at the first error.
bool read_text(std::istream& is, std::vector<Record>* out,
               util::DiagList* diags);

// -- binary -----------------------------------------------------------------

void write_binary(std::ostream& os, const std::vector<Record>& records);

/// Chunk-friendly form for callers that hold records in a flat buffer
/// (e.g. a ChunkBuffer flush or a shard of a materialized trace).
void write_binary(std::ostream& os, const Record* records, size_t count);

bool read_binary(std::istream& is, std::vector<Record>* out,
                 util::DiagList* diags);

/// Size in bytes one record occupies in the binary encoding.
size_t binary_record_size(const Record& r);

}  // namespace foray::trace
