// Trace serialization.
//
// Two interchangeable encodings:
//  - A text format close to the paper's Figure 4(c) listing, for human
//    inspection and documentation examples.
//  - A compact binary format for the offline-analysis ablation (E9),
//    where trace volume matters.
// Both round-trip exactly (property-tested).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.h"
#include "util/status.h"

namespace foray::trace {

// -- text -------------------------------------------------------------------

/// Renders one record in the paper-like text form, e.g.
///   "Checkpoint: body_begin 15"
///   "Instr: 4002a0 addr: 7fff5934 wr 1 data"
std::string record_to_text(const Record& r);

void write_text(std::ostream& os, const std::vector<Record>& records);

/// Parses the text format. Malformed lines fail as kInvalidInput with a
/// 1-based line number; parsing stops at the first error. Records parsed
/// before the error remain appended to *out (callers that need
/// all-or-nothing should parse into a scratch vector).
util::Status read_text(std::istream& is, std::vector<Record>* out);

// -- binary -----------------------------------------------------------------

void write_binary(std::ostream& os, const std::vector<Record>& records);

/// Chunk-friendly form for callers that hold records in a flat buffer
/// (e.g. a ChunkBuffer flush or a shard of a materialized trace).
void write_binary(std::ostream& os, const Record* records, size_t count);

/// Parses the binary format. Hardened against hostile input: a bad magic
/// or unknown record tag is kInvalidInput; truncation (header or body) is
/// kIoError; a header whose record count cannot fit in the remaining
/// bytes is rejected up front as kInvalidInput, before any allocation
/// sized from it. Fault site "trace.chunk.corrupt" injects a kIoError
/// here for the fault-injection harness.
util::Status read_binary(std::istream& is, std::vector<Record>* out);

/// Size in bytes one record occupies in the binary encoding.
size_t binary_record_size(const Record& r);

}  // namespace foray::trace
