// Trace sinks.
//
// The simulator pushes records into a Sink. Because the FORAY-GEN
// extractor is itself a Sink, analysis can run *online* during profiling
// — the paper's constant-space mode where the (typically large) trace
// file is never materialized. VectorSink materializes the trace for the
// offline mode, TeeSink fans out to both.
//
// Transport is *chunked*: producers deliver runs of records through
// on_chunk(), paying one (virtual) call per chunk instead of one per
// record; on_record() remains as the single-record convenience and the
// default on_chunk() loops over it, so a sink only implementing
// on_record() still sees every record. Concrete sinks that can do better
// (bulk append, tight counting loops) override on_chunk().
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "trace/record.h"
#include "util/fault.h"
#include "util/status.h"

namespace foray::trace {

/// Default number of records a chunking producer buffers before flushing
/// downstream. 1024 records = 12 KiB: comfortably L1-resident while still
/// amortizing the per-chunk dispatch to nothing.
inline constexpr size_t kDefaultChunkRecords = 1024;

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_record(const Record& r) = 0;
  /// Bulk delivery of `n` consecutive records. Equivalent to calling
  /// on_record() for each; the base implementation does exactly that.
  virtual void on_chunk(const Record* r, size_t n) {
    for (size_t i = 0; i < n; ++i) on_record(r[i]);
  }
};

/// Discards everything (pure-execution runs).
class NullSink final : public Sink {
 public:
  void on_record(const Record&) override {}
  void on_chunk(const Record*, size_t) override {}
};

/// Materializes the full trace in memory (the offline "trace file" mode).
///
/// Traces routinely run to millions of records, so callers that know the
/// expected volume (sim::RunOptions::trace_reserve_hint, a previous run of
/// the same program) should pass it here: a single up-front reserve avoids
/// the growth reallocations that would otherwise copy the whole trace
/// several times over.
class VectorSink final : public Sink {
 public:
  VectorSink() = default;
  explicit VectorSink(size_t reserve_hint) { records_.reserve(reserve_hint); }

  void reserve(size_t records) { records_.reserve(records); }
  void on_record(const Record& r) override { records_.push_back(r); }
  void on_chunk(const Record* r, size_t n) override {
    // Fault site "trace.buffer.alloc": models the materialized trace
    // outgrowing memory. Consulted per chunk, so the unfaulted cost is
    // one relaxed load per ~1024 records.
    if (util::fault::enabled() &&
        util::fault::should_fail("trace.buffer.alloc")) {
      throw util::StatusError(util::Status::failure(
          util::ErrorCode::kResourceExhausted, "trace", 0,
          "injected trace-buffer allocation failure"));
    }
    records_.insert(records_.end(), r, r + n);
  }
  const std::vector<Record>& records() const { return records_; }
  std::vector<Record> take() { return std::move(records_); }
  void clear() { records_.clear(); }
  size_t size() const { return records_.size(); }

 private:
  std::vector<Record> records_;
};

/// Fans records out to several sinks (e.g. trace file + online analyzer).
///
/// Ownership: TeeSink does NOT own its children. Every added sink must
/// outlive the TeeSink (or at least the last on_record() call); the
/// typical pattern is stack-allocating the children before the tee in the
/// same scope. Null sinks are rejected at add() time so a lifetime bug
/// cannot hide behind a silently-dropped pointer.
class TeeSink final : public Sink {
 public:
  TeeSink() = default;
  TeeSink(std::initializer_list<Sink*> sinks) {
    for (Sink* s : sinks) add(s);
  }

  void add(Sink* s) {
    FORAY_CHECK(s != nullptr, "TeeSink::add: null sink");
    FORAY_CHECK(s != this, "TeeSink::add: cannot add a tee to itself");
    sinks_.push_back(s);
  }
  void on_record(const Record& r) override {
    for (Sink* s : sinks_) s->on_record(r);
  }
  void on_chunk(const Record* r, size_t n) override {
    for (Sink* s : sinks_) s->on_chunk(r, n);
  }

 private:
  std::vector<Sink*> sinks_;
};

/// Counts records by type without storing them (used to measure trace
/// volume in the online-analysis ablation).
class CountingSink final : public Sink {
 public:
  void on_record(const Record& r) override { tally(r); }
  void on_chunk(const Record* r, size_t n) override {
    for (size_t i = 0; i < n; ++i) tally(r[i]);
  }
  uint64_t total() const { return total_; }
  uint64_t checkpoints() const { return checkpoints_; }
  uint64_t accesses() const { return accesses_; }
  uint64_t calls() const { return calls_; }
  uint64_t rets() const { return rets_; }

 private:
  void tally(const Record& r) {
    ++total_;
    switch (r.type()) {
      case RecordType::Checkpoint: ++checkpoints_; break;
      case RecordType::Access: ++accesses_; break;
      case RecordType::Call: ++calls_; break;
      case RecordType::Ret: ++rets_; break;
    }
  }

  uint64_t total_ = 0, checkpoints_ = 0, accesses_ = 0, calls_ = 0,
           rets_ = 0;
};

/// Batches single-record pushes into chunks for a downstream sink, for
/// producers that cannot easily chunk themselves. Records are forwarded
/// in order; an incoming chunk is passed through directly (after
/// flushing buffered records so ordering holds).
///
/// The destructor flushes, but a producer that wants the downstream sink
/// complete at a known point should call flush() explicitly.
class ChunkBuffer final : public Sink {
 public:
  explicit ChunkBuffer(Sink* downstream,
                       size_t chunk_records = kDefaultChunkRecords)
      : downstream_(downstream),
        buf_(chunk_records == 0 ? 1 : chunk_records) {
    FORAY_CHECK(downstream != nullptr, "ChunkBuffer: null downstream sink");
  }
  ~ChunkBuffer() override { flush(); }

  ChunkBuffer(const ChunkBuffer&) = delete;
  ChunkBuffer& operator=(const ChunkBuffer&) = delete;

  void on_record(const Record& r) override {
    buf_[len_++] = r;
    if (len_ == buf_.size()) flush();
  }
  void on_chunk(const Record* r, size_t n) override {
    flush();
    downstream_->on_chunk(r, n);
  }
  void flush() {
    if (len_ != 0) {
      downstream_->on_chunk(buf_.data(), len_);
      len_ = 0;
    }
  }
  size_t buffered() const { return len_; }

 private:
  Sink* downstream_;
  std::vector<Record> buf_;
  size_t len_ = 0;
};

}  // namespace foray::trace
