// Trace sinks.
//
// The simulator pushes records into a Sink. Because the FORAY-GEN
// extractor is itself a Sink, analysis can run *online* during profiling
// — the paper's constant-space mode where the (typically large) trace
// file is never materialized. VectorSink materializes the trace for the
// offline mode, TeeSink fans out to both.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "trace/record.h"
#include "util/status.h"

namespace foray::trace {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_record(const Record& r) = 0;
};

/// Discards everything (pure-execution runs).
class NullSink final : public Sink {
 public:
  void on_record(const Record&) override {}
};

/// Materializes the full trace in memory (the offline "trace file" mode).
///
/// Traces routinely run to millions of records, so callers that know the
/// expected volume (sim::RunOptions::trace_reserve_hint, a previous run of
/// the same program) should pass it here: a single up-front reserve avoids
/// the growth reallocations that would otherwise copy the whole trace
/// several times over.
class VectorSink final : public Sink {
 public:
  VectorSink() = default;
  explicit VectorSink(size_t reserve_hint) { records_.reserve(reserve_hint); }

  void reserve(size_t records) { records_.reserve(records); }
  void on_record(const Record& r) override { records_.push_back(r); }
  const std::vector<Record>& records() const { return records_; }
  std::vector<Record> take() { return std::move(records_); }
  void clear() { records_.clear(); }
  size_t size() const { return records_.size(); }

 private:
  std::vector<Record> records_;
};

/// Fans records out to several sinks (e.g. trace file + online analyzer).
///
/// Ownership: TeeSink does NOT own its children. Every added sink must
/// outlive the TeeSink (or at least the last on_record() call); the
/// typical pattern is stack-allocating the children before the tee in the
/// same scope. Null sinks are rejected at add() time so a lifetime bug
/// cannot hide behind a silently-dropped pointer.
class TeeSink final : public Sink {
 public:
  TeeSink() = default;
  TeeSink(std::initializer_list<Sink*> sinks) {
    for (Sink* s : sinks) add(s);
  }

  void add(Sink* s) {
    FORAY_CHECK(s != nullptr, "TeeSink::add: null sink");
    FORAY_CHECK(s != this, "TeeSink::add: cannot add a tee to itself");
    sinks_.push_back(s);
  }
  void on_record(const Record& r) override {
    for (Sink* s : sinks_) s->on_record(r);
  }

 private:
  std::vector<Sink*> sinks_;
};

/// Counts records by type without storing them (used to measure trace
/// volume in the online-analysis ablation).
class CountingSink final : public Sink {
 public:
  void on_record(const Record& r) override {
    ++total_;
    switch (r.type) {
      case RecordType::Checkpoint: ++checkpoints_; break;
      case RecordType::Access: ++accesses_; break;
      case RecordType::Call: ++calls_; break;
      case RecordType::Ret: ++rets_; break;
    }
  }
  uint64_t total() const { return total_; }
  uint64_t checkpoints() const { return checkpoints_; }
  uint64_t accesses() const { return accesses_; }
  uint64_t calls() const { return calls_; }
  uint64_t rets() const { return rets_; }

 private:
  uint64_t total_ = 0, checkpoints_ = 0, accesses_ = 0, calls_ = 0,
           rets_ = 0;
};

}  // namespace foray::trace
