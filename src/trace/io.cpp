#include "trace/io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/fault.h"
#include "util/strings.h"

namespace foray::trace {

namespace {

const char* cp_name(CheckpointType t) {
  switch (t) {
    case CheckpointType::LoopEnter: return "loop_enter";
    case CheckpointType::BodyBegin: return "body_begin";
    case CheckpointType::BodyEnd: return "body_end";
    case CheckpointType::LoopExit: return "loop_exit";
  }
  return "?";
}

bool parse_cp(std::string_view s, CheckpointType* out) {
  if (s == "loop_enter") *out = CheckpointType::LoopEnter;
  else if (s == "body_begin") *out = CheckpointType::BodyBegin;
  else if (s == "body_end") *out = CheckpointType::BodyEnd;
  else if (s == "loop_exit") *out = CheckpointType::LoopExit;
  else return false;
  return true;
}

const char* kind_name(AccessKind k) {
  switch (k) {
    case AccessKind::Data: return "data";
    case AccessKind::Scalar: return "scalar";
    case AccessKind::System: return "system";
  }
  return "?";
}

bool parse_kind(std::string_view s, AccessKind* out) {
  if (s == "data") *out = AccessKind::Data;
  else if (s == "scalar") *out = AccessKind::Scalar;
  else if (s == "system") *out = AccessKind::System;
  else return false;
  return true;
}

}  // namespace

std::string record_to_text(const Record& r) {
  std::ostringstream os;
  switch (r.type()) {
    case RecordType::Checkpoint:
      os << "Checkpoint: " << cp_name(r.cp()) << " " << r.loop_id();
      break;
    case RecordType::Access:
      os << "Instr: " << util::to_hex(r.instr())
         << " addr: " << util::to_hex(r.addr()) << " "
         << (r.is_write() ? "wr" : "rd") << " " << static_cast<int>(r.size())
         << " " << kind_name(r.kind());
      break;
    case RecordType::Call:
      os << "Call: " << r.func_id();
      break;
    case RecordType::Ret:
      os << "Ret: " << r.func_id();
      break;
  }
  return os.str();
}

void write_text(std::ostream& os, const std::vector<Record>& records) {
  for (const Record& r : records) os << record_to_text(r) << '\n';
}

util::Status read_text(std::istream& is, std::vector<Record>* out) {
  std::string line;
  int lineno = 0;
  const auto malformed = [&](const char* what) {
    return util::Status::failure(util::ErrorCode::kInvalidInput, "trace-text",
                                 lineno,
                                 std::string(what) + " record: " + line);
  };
  while (std::getline(is, line)) {
    ++lineno;
    auto toks = util::split_ws(line);
    if (toks.empty()) continue;
    if (toks[0] == "Checkpoint:") {
      CheckpointType cp;
      int64_t id;
      if (toks.size() != 3 || !parse_cp(toks[1], &cp) ||
          !util::parse_i64(toks[2], &id)) {
        return malformed("malformed checkpoint");
      }
      out->push_back(Record::checkpoint(cp, static_cast<int32_t>(id)));
    } else if (toks[0] == "Instr:") {
      uint64_t instr, addr;
      int64_t size;
      AccessKind kind;
      if (toks.size() != 7 || !util::parse_hex(toks[1], &instr) ||
          toks[2] != "addr:" || !util::parse_hex(toks[3], &addr) ||
          (toks[4] != "wr" && toks[4] != "rd") ||
          !util::parse_i64(toks[5], &size) || !parse_kind(toks[6], &kind)) {
        return malformed("malformed access");
      }
      out->push_back(Record::access(static_cast<uint32_t>(instr),
                                    static_cast<uint32_t>(addr),
                                    static_cast<uint8_t>(size),
                                    toks[4] == "wr", kind));
    } else if (toks[0] == "Call:" || toks[0] == "Ret:") {
      int64_t id;
      if (toks.size() != 2 || !util::parse_i64(toks[1], &id)) {
        return malformed("malformed call/ret");
      }
      out->push_back(toks[0] == "Call:"
                         ? Record::call(static_cast<int32_t>(id))
                         : Record::ret(static_cast<int32_t>(id)));
    } else {
      return malformed("unknown");
    }
  }
  return util::Status();
}

// Binary layout: 1 tag byte, then a fixed payload per type.
//   Checkpoint: tag = 0x00 | cp(2 bits << 2) ... use tag byte: (type<<4)|sub
//   Access:     tag, instr u32, addr u32, size u8, flags u8
//   Call/Ret:   tag, func u32

namespace {

void put_u32(std::ostream& os, uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
               static_cast<char>((v >> 16) & 0xff),
               static_cast<char>((v >> 24) & 0xff)};
  os.write(b, 4);
}

bool get_u32(std::istream& is, uint32_t* v) {
  unsigned char b[4];
  if (!is.read(reinterpret_cast<char*>(b), 4)) return false;
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

constexpr char kMagic[4] = {'F', 'T', 'R', 'C'};

}  // namespace

size_t binary_record_size(const Record& r) {
  switch (r.type()) {
    case RecordType::Checkpoint: return 1 + 4;
    case RecordType::Access: return 1 + 4 + 4 + 1 + 1;
    case RecordType::Call:
    case RecordType::Ret: return 1 + 4;
  }
  return 0;
}

void write_binary(std::ostream& os, const std::vector<Record>& records) {
  write_binary(os, records.data(), records.size());
}

void write_binary(std::ostream& os, const Record* records, size_t count) {
  os.write(kMagic, 4);
  put_u32(os, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const Record& r = records[i];
    uint8_t tag = static_cast<uint8_t>(r.type()) << 4;
    switch (r.type()) {
      case RecordType::Checkpoint:
        tag |= static_cast<uint8_t>(r.cp());
        os.put(static_cast<char>(tag));
        put_u32(os, static_cast<uint32_t>(r.loop_id()));
        break;
      case RecordType::Access:
        tag |= static_cast<uint8_t>(r.kind()) |
               (r.is_write() ? 0x08 : 0x00);
        os.put(static_cast<char>(tag));
        put_u32(os, r.instr());
        put_u32(os, r.addr());
        os.put(static_cast<char>(r.size()));
        os.put(0);  // reserved
        break;
      case RecordType::Call:
      case RecordType::Ret:
        os.put(static_cast<char>(tag));
        put_u32(os, static_cast<uint32_t>(r.func_id()));
        break;
    }
  }
}

namespace {

util::Status bad_input(const std::string& msg) {
  return util::Status::failure(util::ErrorCode::kInvalidInput, "trace-io", 0,
                               msg);
}

util::Status io_error(const std::string& msg) {
  return util::Status::failure(util::ErrorCode::kIoError, "trace-io", 0, msg);
}

/// Smallest on-disk record (Checkpoint/Call/Ret: tag + u32). A header
/// claiming more records than `remaining / kMinRecordBytes` is lying.
constexpr uint64_t kMinRecordBytes = 5;

/// When the stream is not seekable (so the remaining size is unknowable),
/// the up-front reserve is capped here and the vector grows normally past
/// it — a hostile count then costs amortized growth, not a 20 GiB reserve.
constexpr uint32_t kUncheckedReserveCap = 1u << 20;

}  // namespace

util::Status read_binary(std::istream& is, std::vector<Record>* out) {
  char magic[4];
  if (!is.read(magic, 4) || std::string_view(magic, 4) !=
                                std::string_view(kMagic, 4)) {
    return bad_input("bad trace magic");
  }
  if (util::fault::enabled() &&
      util::fault::should_fail("trace.chunk.corrupt")) {
    return io_error("injected corrupt trace chunk");
  }
  uint32_t count = 0;
  if (!get_u32(is, &count)) {
    return io_error("truncated trace header");
  }
  // Validate the claimed count against the bytes actually present before
  // sizing any allocation from it (oversized-header hardening).
  uint32_t reserve_count = std::min(count, kUncheckedReserveCap);
  const std::istream::pos_type body = is.tellg();
  if (body != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(body);
    if (end != std::istream::pos_type(-1) && is) {
      const uint64_t remaining = static_cast<uint64_t>(end - body);
      if (static_cast<uint64_t>(count) * kMinRecordBytes > remaining) {
        return bad_input("trace header claims " + std::to_string(count) +
                         " records but only " + std::to_string(remaining) +
                         " bytes follow");
      }
      reserve_count = count;
    }
  }
  is.clear();  // tellg(-1) on non-seekable streams sets failbit
  out->reserve(out->size() + reserve_count);
  for (uint32_t i = 0; i < count; ++i) {
    const std::string at = " (record " + std::to_string(i) + " of " +
                           std::to_string(count) + ")";
    int tag_c = is.get();
    if (tag_c < 0) {
      return io_error("truncated trace body" + at);
    }
    uint8_t tag = static_cast<uint8_t>(tag_c);
    auto type = static_cast<RecordType>(tag >> 4);
    switch (type) {
      case RecordType::Checkpoint: {
        uint32_t id;
        if (!get_u32(is, &id)) {
          return io_error("truncated checkpoint record" + at);
        }
        out->push_back(Record::checkpoint(
            static_cast<CheckpointType>(tag & 0x03),
            static_cast<int32_t>(id)));
        break;
      }
      case RecordType::Access: {
        uint32_t instr, addr;
        if (!get_u32(is, &instr) || !get_u32(is, &addr)) {
          return io_error("truncated access record" + at);
        }
        int size = is.get();
        int reserved = is.get();
        if (size < 0 || reserved < 0) {
          return io_error("truncated access record" + at);
        }
        out->push_back(Record::access(instr, addr,
                                      static_cast<uint8_t>(size),
                                      (tag & 0x08) != 0,
                                      static_cast<AccessKind>(tag & 0x03)));
        break;
      }
      case RecordType::Call:
      case RecordType::Ret: {
        uint32_t id;
        if (!get_u32(is, &id)) {
          return io_error("truncated call/ret record" + at);
        }
        out->push_back(type == RecordType::Call
                           ? Record::call(static_cast<int32_t>(id))
                           : Record::ret(static_cast<int32_t>(id)));
        break;
      }
      default:
        return bad_input("unknown record tag " + std::to_string(tag) + at);
    }
  }
  return util::Status();
}

}  // namespace foray::trace
