#include "trace/io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace foray::trace {

namespace {

const char* cp_name(CheckpointType t) {
  switch (t) {
    case CheckpointType::LoopEnter: return "loop_enter";
    case CheckpointType::BodyBegin: return "body_begin";
    case CheckpointType::BodyEnd: return "body_end";
    case CheckpointType::LoopExit: return "loop_exit";
  }
  return "?";
}

bool parse_cp(std::string_view s, CheckpointType* out) {
  if (s == "loop_enter") *out = CheckpointType::LoopEnter;
  else if (s == "body_begin") *out = CheckpointType::BodyBegin;
  else if (s == "body_end") *out = CheckpointType::BodyEnd;
  else if (s == "loop_exit") *out = CheckpointType::LoopExit;
  else return false;
  return true;
}

const char* kind_name(AccessKind k) {
  switch (k) {
    case AccessKind::Data: return "data";
    case AccessKind::Scalar: return "scalar";
    case AccessKind::System: return "system";
  }
  return "?";
}

bool parse_kind(std::string_view s, AccessKind* out) {
  if (s == "data") *out = AccessKind::Data;
  else if (s == "scalar") *out = AccessKind::Scalar;
  else if (s == "system") *out = AccessKind::System;
  else return false;
  return true;
}

}  // namespace

std::string record_to_text(const Record& r) {
  std::ostringstream os;
  switch (r.type()) {
    case RecordType::Checkpoint:
      os << "Checkpoint: " << cp_name(r.cp()) << " " << r.loop_id();
      break;
    case RecordType::Access:
      os << "Instr: " << util::to_hex(r.instr())
         << " addr: " << util::to_hex(r.addr()) << " "
         << (r.is_write() ? "wr" : "rd") << " " << static_cast<int>(r.size())
         << " " << kind_name(r.kind());
      break;
    case RecordType::Call:
      os << "Call: " << r.func_id();
      break;
    case RecordType::Ret:
      os << "Ret: " << r.func_id();
      break;
  }
  return os.str();
}

void write_text(std::ostream& os, const std::vector<Record>& records) {
  for (const Record& r : records) os << record_to_text(r) << '\n';
}

bool read_text(std::istream& is, std::vector<Record>* out,
               util::DiagList* diags) {
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    auto toks = util::split_ws(line);
    if (toks.empty()) continue;
    if (toks[0] == "Checkpoint:") {
      CheckpointType cp;
      int64_t id;
      if (toks.size() != 3 || !parse_cp(toks[1], &cp) ||
          !util::parse_i64(toks[2], &id)) {
        diags->add(lineno, "malformed checkpoint record: " + line);
        return false;
      }
      out->push_back(Record::checkpoint(cp, static_cast<int32_t>(id)));
    } else if (toks[0] == "Instr:") {
      uint64_t instr, addr;
      int64_t size;
      AccessKind kind;
      if (toks.size() != 7 || !util::parse_hex(toks[1], &instr) ||
          toks[2] != "addr:" || !util::parse_hex(toks[3], &addr) ||
          (toks[4] != "wr" && toks[4] != "rd") ||
          !util::parse_i64(toks[5], &size) || !parse_kind(toks[6], &kind)) {
        diags->add(lineno, "malformed access record: " + line);
        return false;
      }
      out->push_back(Record::access(static_cast<uint32_t>(instr),
                                    static_cast<uint32_t>(addr),
                                    static_cast<uint8_t>(size),
                                    toks[4] == "wr", kind));
    } else if (toks[0] == "Call:" || toks[0] == "Ret:") {
      int64_t id;
      if (toks.size() != 2 || !util::parse_i64(toks[1], &id)) {
        diags->add(lineno, "malformed call/ret record: " + line);
        return false;
      }
      out->push_back(toks[0] == "Call:"
                         ? Record::call(static_cast<int32_t>(id))
                         : Record::ret(static_cast<int32_t>(id)));
    } else {
      diags->add(lineno, "unknown record: " + line);
      return false;
    }
  }
  return true;
}

// Binary layout: 1 tag byte, then a fixed payload per type.
//   Checkpoint: tag = 0x00 | cp(2 bits << 2) ... use tag byte: (type<<4)|sub
//   Access:     tag, instr u32, addr u32, size u8, flags u8
//   Call/Ret:   tag, func u32

namespace {

void put_u32(std::ostream& os, uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
               static_cast<char>((v >> 16) & 0xff),
               static_cast<char>((v >> 24) & 0xff)};
  os.write(b, 4);
}

bool get_u32(std::istream& is, uint32_t* v) {
  unsigned char b[4];
  if (!is.read(reinterpret_cast<char*>(b), 4)) return false;
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

constexpr char kMagic[4] = {'F', 'T', 'R', 'C'};

}  // namespace

size_t binary_record_size(const Record& r) {
  switch (r.type()) {
    case RecordType::Checkpoint: return 1 + 4;
    case RecordType::Access: return 1 + 4 + 4 + 1 + 1;
    case RecordType::Call:
    case RecordType::Ret: return 1 + 4;
  }
  return 0;
}

void write_binary(std::ostream& os, const std::vector<Record>& records) {
  write_binary(os, records.data(), records.size());
}

void write_binary(std::ostream& os, const Record* records, size_t count) {
  os.write(kMagic, 4);
  put_u32(os, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const Record& r = records[i];
    uint8_t tag = static_cast<uint8_t>(r.type()) << 4;
    switch (r.type()) {
      case RecordType::Checkpoint:
        tag |= static_cast<uint8_t>(r.cp());
        os.put(static_cast<char>(tag));
        put_u32(os, static_cast<uint32_t>(r.loop_id()));
        break;
      case RecordType::Access:
        tag |= static_cast<uint8_t>(r.kind()) |
               (r.is_write() ? 0x08 : 0x00);
        os.put(static_cast<char>(tag));
        put_u32(os, r.instr());
        put_u32(os, r.addr());
        os.put(static_cast<char>(r.size()));
        os.put(0);  // reserved
        break;
      case RecordType::Call:
      case RecordType::Ret:
        os.put(static_cast<char>(tag));
        put_u32(os, static_cast<uint32_t>(r.func_id()));
        break;
    }
  }
}

bool read_binary(std::istream& is, std::vector<Record>* out,
                 util::DiagList* diags) {
  char magic[4];
  if (!is.read(magic, 4) || std::string_view(magic, 4) !=
                                std::string_view(kMagic, 4)) {
    diags->add(0, "bad trace magic");
    return false;
  }
  uint32_t count = 0;
  if (!get_u32(is, &count)) {
    diags->add(0, "truncated trace header");
    return false;
  }
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    int tag_c = is.get();
    if (tag_c < 0) {
      diags->add(0, "truncated trace body");
      return false;
    }
    uint8_t tag = static_cast<uint8_t>(tag_c);
    auto type = static_cast<RecordType>(tag >> 4);
    switch (type) {
      case RecordType::Checkpoint: {
        uint32_t id;
        if (!get_u32(is, &id)) {
          diags->add(0, "truncated checkpoint record");
          return false;
        }
        out->push_back(Record::checkpoint(
            static_cast<CheckpointType>(tag & 0x03),
            static_cast<int32_t>(id)));
        break;
      }
      case RecordType::Access: {
        uint32_t instr, addr;
        if (!get_u32(is, &instr) || !get_u32(is, &addr)) {
          diags->add(0, "truncated access record");
          return false;
        }
        int size = is.get();
        int reserved = is.get();
        if (size < 0 || reserved < 0) {
          diags->add(0, "truncated access record");
          return false;
        }
        out->push_back(Record::access(instr, addr,
                                      static_cast<uint8_t>(size),
                                      (tag & 0x08) != 0,
                                      static_cast<AccessKind>(tag & 0x03)));
        break;
      }
      case RecordType::Call:
      case RecordType::Ret: {
        uint32_t id;
        if (!get_u32(is, &id)) {
          diags->add(0, "truncated call/ret record");
          return false;
        }
        out->push_back(type == RecordType::Call
                           ? Record::call(static_cast<int32_t>(id))
                           : Record::ret(static_cast<int32_t>(id)));
        break;
      }
      default:
        diags->add(0, "unknown record tag");
        return false;
    }
  }
  return true;
}

}  // namespace foray::trace
