// Trace records — the interface between the instruction-set simulator
// (profiling, Step 2 of Algorithm 1) and the FORAY-GEN analyzer.
//
// A trace is a flat stream of records in execution order:
//  - Checkpoint records delimit loop activity (Step 1's annotations). The
//    paper emits three checkpoint kinds and infers loop exit; we emit an
//    explicit LoopExit as well (the simulator always knows), which makes
//    loop-tree reconstruction exact under break/return unwinding.
//  - Access records are the "Instr: 4002a0 addr: 7fff5934 wr" lines of
//    Figure 4(c): instruction address, access address, size, direction.
//  - Call/Ret records mark user-function boundaries; the analyzer ignores
//    them but statistics and the inlining advisor use them.
//
// Records are a packed 12-byte tagged layout: one 32-bit payload word
// (instr / loop id / func id), the access address, a tag byte carrying
// the type and per-type flags, and the access size. Traces routinely run
// to millions of records, so the difference between this and a naively
// padded struct is the difference between a chunk fitting in L1 or not —
// the chunked transport (trace::Sink::on_chunk) moves records in bulk
// and the density is what makes that worthwhile.
#pragma once

#include <cstdint>
#include <type_traits>

namespace foray::trace {

enum class CheckpointType : uint8_t {
  LoopEnter,  ///< about to evaluate a loop for the first time (this entry)
  BodyBegin,  ///< an iteration's body is starting
  BodyEnd,    ///< an iteration's body finished normally (or via continue)
  LoopExit,   ///< the loop terminated (normal exit, break, or unwinding)
};

/// Provenance of a memory access, used only for statistics (Table III).
enum class AccessKind : uint8_t {
  Data,    ///< array element / pointer dereference
  Scalar,  ///< direct scalar variable access (register-like traffic)
  System,  ///< performed inside an intrinsic ("system library") call
};

enum class RecordType : uint8_t { Checkpoint, Access, Call, Ret };

class Record {
 public:
  Record() = default;

  // Tag layout (one byte): bits 7..6 = RecordType; the low bits are
  // per-type. Checkpoint: bits 1..0 = CheckpointType. Access: bit 2 =
  // write, bits 1..0 = AccessKind. Call/Ret: low bits unused.
  RecordType type() const { return static_cast<RecordType>(tag_ >> 6); }
  CheckpointType cp() const {
    return static_cast<CheckpointType>(tag_ & 0x03);
  }
  AccessKind kind() const { return static_cast<AccessKind>(tag_ & 0x03); }
  bool is_write() const { return (tag_ & 0x04) != 0; }

  int32_t loop_id() const { return static_cast<int32_t>(word_); }
  uint32_t instr() const { return word_; }
  uint32_t addr() const { return addr_; }
  uint8_t size() const { return size_; }
  int32_t func_id() const { return static_cast<int32_t>(word_); }

  // -- factories ------------------------------------------------------------
  static Record checkpoint(CheckpointType t, int32_t loop) {
    Record r;
    r.tag_ = make_tag(RecordType::Checkpoint, static_cast<uint8_t>(t));
    r.word_ = static_cast<uint32_t>(loop);
    return r;
  }
  static Record access(uint32_t instr, uint32_t addr, uint8_t size,
                       bool is_write, AccessKind kind = AccessKind::Data) {
    Record r;
    r.tag_ = make_tag(RecordType::Access, static_cast<uint8_t>(
                                              static_cast<uint8_t>(kind) |
                                              (is_write ? 0x04 : 0x00)));
    r.word_ = instr;
    r.addr_ = addr;
    r.size_ = size;
    return r;
  }
  static Record call(int32_t func_id) {
    Record r;
    r.tag_ = make_tag(RecordType::Call, 0);
    r.word_ = static_cast<uint32_t>(func_id);
    return r;
  }
  static Record ret(int32_t func_id) {
    Record r;
    r.tag_ = make_tag(RecordType::Ret, 0);
    r.word_ = static_cast<uint32_t>(func_id);
    return r;
  }

  /// Factories zero every field a type does not use, so whole-record
  /// comparison is exactly the per-type payload comparison.
  bool operator==(const Record& o) const {
    return tag_ == o.tag_ && word_ == o.word_ && addr_ == o.addr_ &&
           size_ == o.size_;
  }

 private:
  static uint8_t make_tag(RecordType t, uint8_t low) {
    return static_cast<uint8_t>((static_cast<uint8_t>(t) << 6) | low);
  }

  uint32_t word_ = 0;  ///< instr (Access) / loop id (Checkpoint) / func id
  uint32_t addr_ = 0;  ///< data address accessed (Access only)
  uint8_t tag_ = static_cast<uint8_t>(static_cast<uint8_t>(RecordType::Access)
                                      << 6);
  uint8_t size_ = 0;   ///< access width in bytes (Access only)
  /// Explicitly zeroed tail padding: whole-record memcmp (the engine
  /// equivalence harness compares multi-million-record streams that way)
  /// must never see indeterminate bytes.
  uint16_t reserved_ = 0;
};

static_assert(sizeof(Record) == 12,
              "Record must stay a packed 12-byte tagged layout; the chunked "
              "trace transport and trace/io binary format budget for it");
static_assert(std::is_trivially_copyable_v<Record>,
              "chunks of Records are moved with bulk copies");

}  // namespace foray::trace
