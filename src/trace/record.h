// Trace records — the interface between the instruction-set simulator
// (profiling, Step 2 of Algorithm 1) and the FORAY-GEN analyzer.
//
// A trace is a flat stream of records in execution order:
//  - Checkpoint records delimit loop activity (Step 1's annotations). The
//    paper emits three checkpoint kinds and infers loop exit; we emit an
//    explicit LoopExit as well (the simulator always knows), which makes
//    loop-tree reconstruction exact under break/return unwinding.
//  - Access records are the "Instr: 4002a0 addr: 7fff5934 wr" lines of
//    Figure 4(c): instruction address, access address, size, direction.
//  - Call/Ret records mark user-function boundaries; the analyzer ignores
//    them but statistics and the inlining advisor use them.
#pragma once

#include <cstdint>

namespace foray::trace {

enum class CheckpointType : uint8_t {
  LoopEnter,  ///< about to evaluate a loop for the first time (this entry)
  BodyBegin,  ///< an iteration's body is starting
  BodyEnd,    ///< an iteration's body finished normally (or via continue)
  LoopExit,   ///< the loop terminated (normal exit, break, or unwinding)
};

/// Provenance of a memory access, used only for statistics (Table III).
enum class AccessKind : uint8_t {
  Data,    ///< array element / pointer dereference
  Scalar,  ///< direct scalar variable access (register-like traffic)
  System,  ///< performed inside an intrinsic ("system library") call
};

enum class RecordType : uint8_t { Checkpoint, Access, Call, Ret };

struct Record {
  RecordType type = RecordType::Access;

  // Checkpoint payload.
  CheckpointType cp = CheckpointType::LoopEnter;
  int32_t loop_id = -1;

  // Access payload.
  uint32_t instr = 0;   ///< instruction address (synthetic text segment)
  uint32_t addr = 0;    ///< data address accessed
  uint8_t size = 0;     ///< access width in bytes
  bool is_write = false;
  AccessKind kind = AccessKind::Data;

  // Call/Ret payload.
  int32_t func_id = -1;

  // -- factories ------------------------------------------------------------
  static Record checkpoint(CheckpointType t, int32_t loop) {
    Record r;
    r.type = RecordType::Checkpoint;
    r.cp = t;
    r.loop_id = loop;
    return r;
  }
  static Record access(uint32_t instr, uint32_t addr, uint8_t size,
                       bool is_write, AccessKind kind = AccessKind::Data) {
    Record r;
    r.type = RecordType::Access;
    r.instr = instr;
    r.addr = addr;
    r.size = size;
    r.is_write = is_write;
    r.kind = kind;
    return r;
  }
  static Record call(int32_t func_id) {
    Record r;
    r.type = RecordType::Call;
    r.func_id = func_id;
    return r;
  }
  static Record ret(int32_t func_id) {
    Record r;
    r.type = RecordType::Ret;
    r.func_id = func_id;
    return r;
  }

  bool operator==(const Record& o) const {
    if (type != o.type) return false;
    switch (type) {
      case RecordType::Checkpoint:
        return cp == o.cp && loop_id == o.loop_id;
      case RecordType::Access:
        return instr == o.instr && addr == o.addr && size == o.size &&
               is_write == o.is_write && kind == o.kind;
      case RecordType::Call:
      case RecordType::Ret:
        return func_id == o.func_id;
    }
    return false;
  }
};

}  // namespace foray::trace
