// A bounded ring of reusable record buffers between one trace producer
// (the simulator) and one consumer (an Extractor running on its own
// thread) — the transport behind pipeline-overlapped profiling.
//
// Each slot carries a block of records plus the *runs* they decompose
// into: a run is a contiguous piece of the global trace, tagged with its
// starting stream position so the consumer can keep creation stamps
// (LoopNode/RefNode::first_seen) identical to a fused sequential run via
// Extractor::set_stream_pos(). With one consumer the whole stream is one
// run per slot; the sharded router (foray/online_pipeline.cpp) interleaves
// runs of different contexts into per-shard rings.
//
// Locking is deliberately coarse: one mutex + two condition variables per
// ring, taken once per slot (thousands of records), not per record. The
// slots themselves are reused, so steady-state operation performs no
// allocation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "trace/record.h"

namespace foray::trace {

class ChunkRing {
 public:
  /// One contiguous piece of the global trace inside a slot's buffer.
  struct Run {
    uint64_t start_pos = 0;  ///< global stream position of records[offset]
    uint32_t offset = 0;     ///< first record of the run within the slot
    uint32_t len = 0;
  };

  struct Slot {
    std::vector<Record> records;
    std::vector<Run> runs;
    size_t used = 0;  ///< records filled by the producer

    void reset() {
      used = 0;
      runs.clear();
    }
  };

  ChunkRing(size_t slots, size_t slot_records)
      : slots_(slots == 0 ? 2 : slots) {
    for (auto& s : slots_) s.records.resize(slot_records == 0 ? 1 : slot_records);
  }

  size_t slot_records() const { return slots_[0].records.size(); }

  /// Producer: the slot currently being filled (blocks while the ring is
  /// full). Returns nullptr after consumer_abort() — the producer should
  /// then drop records on the floor (the run is failing anyway).
  Slot* producer_acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return aborted_ || produced_ - consumed_ < slots_.size();
    });
    if (aborted_) return nullptr;
    Slot* s = &slots_[produced_ % slots_.size()];
    return s;
  }

  /// Producer: hands the acquired slot to the consumer.
  void producer_publish() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++produced_;
    }
    not_empty_.notify_one();
  }

  /// Producer: no more slots will be published.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_one();
  }

  /// Consumer: next published slot, or nullptr once the ring is closed
  /// and drained.
  Slot* consumer_pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return consumed_ < produced_ || closed_; });
    if (consumed_ == produced_) return nullptr;
    return &slots_[consumed_ % slots_.size()];
  }

  /// Consumer: returns the popped slot to the producer's free pool.
  void consumer_release(Slot* s) {
    s->reset();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++consumed_;
    }
    not_full_.notify_one();
  }

  /// Consumer died (extraction threw): permanently unblocks the producer
  /// so the simulator can run to completion discarding records.
  void consumer_abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
    }
    not_full_.notify_one();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return aborted_;
  }

 private:
  std::vector<Slot> slots_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  uint64_t produced_ = 0;  ///< slots published
  uint64_t consumed_ = 0;  ///< slots released
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace foray::trace
