// The MiniC instruction-set simulator (the paper's modified SimpleScalar).
//
// Executes a checked, loop-annotated MiniC program and pushes a trace
// record stream into a trace::Sink:
//   - checkpoint records around every annotated loop (Step 1/2 of
//     Algorithm 1),
//   - one Access record per simulated memory operation, carrying the
//     synthetic instruction address derived from the AST node id,
//   - Call/Ret records at user-function boundaries.
//
// All program variables live in simulated memory (globals / stack / heap),
// so scalar and stack traffic shows up in traces exactly like the paper's
// "references not present explicitly in the source" that Step 4 later
// filters out. Intrinsics model system libraries; their traffic is tagged
// AccessKind::System.
#pragma once

#include <cstdint>
#include <string>

#include "minic/ast.h"
#include "sim/budget.h"
#include "sim/memory.h"
#include "trace/sink.h"
#include "util/status.h"

namespace foray::sim {

/// Which execution engine runs the program. All three produce
/// bit-identical traces, outputs, and memory images
/// (tests/engine_equivalence_test.cpp enforces it); they differ only in
/// speed. Engine::Jit degrades to Engine::Bytecode — same results, plus
/// a one-line stderr note — on builds without native-code support.
enum class Engine : uint8_t {
  Ast,       ///< tree-walking reference interpreter (the oracle)
  Bytecode,  ///< flat bytecode + dispatch-loop VM (the fast default)
  Jit,       ///< bytecode lowered to native x86-64 (src/jit/)
};

/// Session-wide default engine: Engine::Bytecode, overridable with the
/// FORAY_ENGINE environment variable ("ast", "bytecode" or "jit") so the
/// whole test suite can be re-run against any engine without code
/// changes (the CI matrix does exactly that).
Engine default_engine();

struct RunOptions {
  Engine engine = default_engine();
  /// Execution bounds: step guard, record budget, wall-clock deadline
  /// and cancellation token (sim/budget.h). The step guard is checked
  /// per instruction; the rest at trace-chunk boundaries, so a run may
  /// overshoot those budgets by at most one chunk.
  Budget budget;
  /// Expected trace volume (records); VectorSink-style consumers use it to
  /// reserve storage up front instead of growing through reallocation.
  /// 0 = unknown.
  uint64_t trace_reserve_hint = 0;
  /// Records buffered before a bulk on_chunk() flush to the sink. 1
  /// degenerates to record-at-a-time delivery (the throughput-bench
  /// baseline); values above a few thousand stop paying for themselves.
  size_t chunk_records = trace::kDefaultChunkRecords;
  bool emit_checkpoints = true;
  bool emit_calls = true;
  bool trace_scalars = true;  ///< record Scalar-kind accesses
  bool trace_data = true;     ///< record Data-kind accesses
  bool trace_system = true;   ///< record System-kind accesses
  uint64_t rng_seed = 1;      ///< seed of the simulated rand()
  uint32_t heap_capacity = 1u << 24;
  uint32_t stack_capacity = 1u << 22;
  size_t max_output_bytes = 1u << 24;
  /// Hash the final simulated memory image into RunResult::memory_digest
  /// (used by the engine-equivalence harness; off by default because the
  /// digest walks every mapped byte).
  bool digest_memory = false;
};

struct RunResult {
  util::Status status;    ///< simulator fault diagnostics when not ok()
  int exit_code = 0;
  std::string output;     ///< accumulated printf/puts/putchar text
  uint64_t steps = 0;     ///< evaluation steps executed
  uint64_t accesses = 0;  ///< memory accesses performed (traced or not)
  /// FNV-1a hash of the final memory image (RunOptions::digest_memory).
  uint64_t memory_digest = 0;

  bool ok() const { return status.ok(); }
  std::string error() const { return status.message(); }
  int error_line() const { return status.first_line(); }
};

/// Executes `prog` (which must have passed sema) from main(), streaming
/// trace records into `sink`. The program AST is not modified.
///
/// Delivery is chunked (RunOptions::chunk_records) but dispatches through
/// the virtual trace::Sink interface once per chunk. Callers that know
/// their concrete sink type — above all the online analyzer — should use
/// run_program_with<SinkT>() from sim/interp_impl.h, which inlines the
/// whole record path into the interpreter (zero virtual calls).
RunResult run_program(const minic::Program& prog, trace::Sink* sink,
                      const RunOptions& opts = {});

}  // namespace foray::sim
