// Traffic classification for transform-replay validation.
//
// The SPM transform-replay phase (spm/replay.h) executes the Phase II
// transformed program on the simulator and must attribute every Data
// access to either an SPM buffer array or a main-memory array, and must
// separate *program* accesses (the reference's own loads/stores) from
// *transfer* traffic (the fill / write-back copy loops). Two pieces live
// here, next to the engines whose behavior they mirror:
//
//  - global_regions(): the simulated address of every global variable,
//    computed from the one shared allocation rule both engines use
//    (sim/global_layout.h); tests/transform_replay_test additionally
//    locks the map against real trace addresses from both engines.
//
//  - ClassifyingSink: a trace::Sink that buckets Data accesses by region
//    and segments transfer events using the loop checkpoints the
//    annotator already emits. A fill loop executes as one innermost loop
//    instance whose body does nothing but `spm[_] = main[_]` byte copies,
//    so a loop instance whose per-buffer tally is exactly "N main reads +
//    N spm writes" is one fill event of N bytes (and symmetrically for
//    write-back). Everything else is program traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minic/ast.h"
#include "trace/sink.h"

namespace foray::sim {

/// One global variable's simulated address range [base, base + size).
struct GlobalRegion {
  std::string name;
  uint32_t base = 0;
  uint32_t size = 0;
};

/// Address map of `prog`'s globals, in declaration order, exactly as both
/// execution engines will allocate them.
std::vector<GlobalRegion> global_regions(const minic::Program& prog);

class ClassifyingSink final : public trace::Sink {
 public:
  /// One address range the sink attributes accesses to. Ranges must not
  /// overlap. `buffer` links a main array and its SPM buffer: regions of
  /// the same non-negative buffer id form a fill/write-back pair and get
  /// transfer-event detection; buffer < 0 means plain main memory.
  struct Region {
    uint32_t base = 0;
    uint32_t size = 0;
    int buffer = -1;     ///< pair id, or -1 for unpaired main memory
    bool is_spm = false; ///< SPM side of the pair (ignored for buffer < 0)
  };

  /// Per-pair traffic decomposition.
  struct BufferCounters {
    uint64_t spm_accesses = 0;   ///< program accesses served by the buffer
    uint64_t main_accesses = 0;  ///< program accesses that hit main anyway
    uint64_t fill_events = 0;    ///< DRAM->SPM copy loop executions
    uint64_t fill_bytes = 0;
    uint64_t writeback_events = 0;  ///< SPM->DRAM copy loop executions
    uint64_t writeback_bytes = 0;
    /// Transfer words, 4 bytes each, rounded up *per event* — the same
    /// granularity spm::candidate_at charges analytically.
    uint64_t transfer_words = 0;
  };

  explicit ClassifyingSink(std::vector<Region> regions, int num_buffers);

  void on_record(const trace::Record& r) override;
  void on_chunk(const trace::Record* r, size_t n) override {
    for (size_t i = 0; i < n; ++i) on_record(r[i]);
  }

  /// Classifies any traffic still attributed to open loop frames (a
  /// program that faulted mid-loop); idempotent. Called automatically by
  /// the accessors below.
  void finalize();

  const std::vector<BufferCounters>& buffers() {
    finalize();
    return buffers_;
  }
  /// Data accesses that fell inside no configured region.
  uint64_t unclassified_accesses() const { return unclassified_; }

  uint64_t total_spm_accesses();
  uint64_t total_main_accesses();
  uint64_t total_transfer_words();

 private:
  /// What one loop instance did to one buffer pair.
  struct Tally {
    int buffer = 0;
    uint64_t main_reads = 0, main_writes = 0;
    uint64_t spm_reads = 0, spm_writes = 0;
  };
  /// One dynamic loop execution (LoopEnter .. LoopExit).
  struct Frame {
    int32_t loop_id = 0;
    std::vector<Tally> tallies;  ///< few buffers per loop; linear scan
  };

  Tally* tally_in(Frame* f, int buffer);
  void account(const Tally& t);
  void classify_frame(const Frame& f);

  std::vector<Region> regions_;  ///< sorted by base
  std::vector<BufferCounters> buffers_;
  std::vector<Frame> stack_;
  uint64_t unpaired_main_ = 0;
  uint64_t unclassified_ = 0;
  bool finalized_ = false;
};

}  // namespace foray::sim
