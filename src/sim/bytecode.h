// Bytecode for the MiniC fast engine.
//
// compile_program() lowers a checked, loop-annotated MiniC AST into a
// flat instruction vector that the dispatch-loop VM (sim/vm.h) executes.
// The compilation uses the same static variable resolution as the AST
// interpreter (sim/resolver.h), so frame-slot layout, allocation order,
// and therefore every address appearing in traces are identical by
// construction. Compilation is option-independent: runtime knobs
// (checkpoints, calls, per-kind trace filters) stay runtime branches in
// the VM exactly like in the tree walker, so one CompiledProgram serves
// any RunOptions.
//
// The instruction set is a stack machine whose ops mirror the tree
// walker's evaluation steps one-to-one — each op either reproduces one
// eval()/exec() case or fuses an address computation into the adjacent
// memory access (which emits no trace of its own, so fusion is
// observationally invisible). Keeping that correspondence is what lets
// the differential harness demand *bit-identical* traces rather than
// "equivalent" ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minic/ast.h"
#include "minic/intrinsics.h"

namespace foray::sim {

// The opcode list as an X-macro so the VM's computed-goto dispatch table
// (sim/vm.h) stays mechanically in sync with the enum. Operand roles:
//
//   PushInt            a = int-pool index
//   PushFloat          a = float-pool index
//   PushStr            a = intern-cell index (lazy rodata allocation)
//   LoadGlobal         a = global slot, b = instr, c = name; scalar read
//   LoadLocal          a = frame slot, b = instr, c = name; scalar read
//   PushGlobalPtr      a = global slot, c = name; array decay / address-of
//   PushLocalPtr       a = frame slot, c = name
//   ThrowUnbound       a = name; statically unresolved identifier
//   PushSlotAddr       a = frame slot, b = byte offset (initializers)
//   PushGlobalSlotAddr a = global slot, b = byte offset
//   IndexAddr          a = elem size; pop idx, base -> push address
//   LoadMem            b = instr; pop addr -> load, push value
//   IndexLoad          fused IndexAddr + LoadMem; a = elem size, b = instr
//   StoreMem           b = instr; pop value, addr -> convert, store, push
//   IndexStore         fused IndexAddr + StoreMem; a = elem size, b = instr
//   StoreInit          b = instr; pop value, addr -> store unconverted
//   CompoundLoad       b = instr; peek addr -> load, push old value
//   StoreBin           compound assign: flags bits 2-7 = BinaryOp; b = instr;
//                      pop rhs, old, addr -> apply, convert, store, push
//   CastToPtr          pop v -> push pointer-to-<type> at v's address
//   Truthy             normalize to int 0/1 (short-circuit results)
//   Binary             flags = BinaryOp; type fields = result type
//   ConvertOp          pop v -> push convert(v, type)
//   IncDec             a = signed delta, b = instr; flags bit 2 = postfix
//   IncDecLocal        fused PushLocalPtr + IncDec on a scalar slot:
//                      a = frame slot, b = instr, c = name;
//                      flags bit 2 = postfix, bit 3 = decrement
//   IncDecGlobal       same for a global slot
//   Jump/JumpIf*       a = target pc (conditionals pop)
//   RestoreSpN         a = n; unwind n scopes (break/continue past blocks)
//   DeclLocal          a = frame slot, b = bytes, flags = align
//   DeclGlobal         a = global index
//   CallFn             a = function index; args already on the value stack
//   CallIntr           a = intrinsic id, b = instr, flags = argc
//   CheckpointOp       flags = CheckpointType, a = loop id
//
// Memory ops carry the AccessKind in flags bits 0-1 and the static value
// type in tbase/tptr.
#define FORAY_VM_OPS(X) \
  X(PushInt)            \
  X(PushFloat)          \
  X(PushStr)            \
  X(LoadGlobal)         \
  X(LoadLocal)          \
  X(PushGlobalPtr)      \
  X(PushLocalPtr)       \
  X(ThrowUnbound)       \
  X(PushSlotAddr)       \
  X(PushGlobalSlotAddr) \
  X(IndexAddr)          \
  X(LoadMem)            \
  X(IndexLoad)          \
  X(StoreMem)           \
  X(IndexStore)         \
  X(StoreInit)          \
  X(CompoundLoad)       \
  X(StoreBin)           \
  X(CastToPtr)          \
  X(Neg)                \
  X(NotOp)              \
  X(BitNotOp)           \
  X(Truthy)             \
  X(Binary)             \
  X(ConvertOp)          \
  X(IncDec)             \
  X(IncDecLocal)        \
  X(IncDecGlobal)       \
  X(Jump)               \
  X(JumpIfFalse)        \
  X(JumpIfTrue)         \
  X(PopV)               \
  X(SaveSp)             \
  X(RestoreSp)          \
  X(RestoreSpN)         \
  X(DeclLocal)          \
  X(DeclGlobal)         \
  X(CallFn)             \
  X(CallIntr)           \
  X(RetValue)           \
  X(ReturnOp)           \
  X(CheckpointOp)       \
  X(Halt)

enum class Op : uint8_t {
#define FORAY_VM_OP_ENUM(name) name,
  FORAY_VM_OPS(FORAY_VM_OP_ENUM)
#undef FORAY_VM_OP_ENUM
};

inline constexpr size_t kNumOps = 0
#define FORAY_VM_OP_COUNT(name) +1
    FORAY_VM_OPS(FORAY_VM_OP_COUNT)
#undef FORAY_VM_OP_COUNT
    ;

/// One 20-byte instruction. The static type a typed op works on is
/// encoded inline (tbase/tptr) so the VM never touches the AST.
struct Insn {
  Op op = Op::PopV;
  uint8_t flags = 0;  ///< op-specific packed bits (kind / BinaryOp / argc)
  uint8_t tbase = 0;  ///< minic::BaseType of the op's static type
  uint8_t tptr = 0;   ///< pointer depth of the op's static type
  uint32_t a = 0;     ///< primary operand (slot / pool index / jump target)
  uint32_t b = 0;     ///< secondary operand (synthetic instruction address)
  uint32_t c = 0;     ///< name-pool index for unbound-identifier faults
  int32_t line = 0;   ///< source line, for fault diagnostics

  minic::Type type() const {
    return minic::Type{static_cast<minic::BaseType>(tbase), tptr};
  }
};

struct CompiledFunc {
  std::string name;
  uint32_t entry = 0;     ///< pc of the first body instruction
  int32_t func_id = 0;    ///< dense id used in Call/Ret trace records
  uint32_t num_slots = 0; ///< frame arena size (params + locals)
  /// Maximum operand-stack depth any pc of this function can reach,
  /// from a static stack-effect analysis over the compiled code. The VM
  /// checks/extends its operand buffer once per call against this bound
  /// so the hot push/pop path needs no capacity checks at all.
  uint32_t max_stack = 0;
  minic::Type ret;
  /// Parameter spill descriptors, executed by CallFn in declaration
  /// order (the allocation order fixes the stack addresses).
  struct ParamBind {
    uint32_t slot = 0;
    minic::Type type;
    uint32_t bytes = 0;
    uint32_t align = 4;
    uint32_t instr = 0;  ///< the param's synthetic store instruction
  };
  std::vector<ParamBind> params;
};

struct GlobalMeta {
  uint32_t bytes = 0;
  uint32_t align = 4;
};

struct CompiledProgram {
  std::vector<Insn> code;
  std::vector<int64_t> int_pool;
  std::vector<double> float_pool;
  /// Unique string-literal contents; cells intern lazily at first
  /// execution, matching the tree walker's first-evaluation rodata order.
  std::vector<std::string> str_pool;
  std::vector<std::string> name_pool;
  std::vector<GlobalMeta> globals;
  std::vector<CompiledFunc> funcs;
  /// Entry point: global allocation + initializers, call main, Halt.
  uint32_t start_pc = 0;
  /// Operand-depth bound of the start segment (see CompiledFunc).
  uint32_t start_max_stack = 0;
};

/// Lowers `prog` (which must have passed sema; loop annotation optional
/// but required for checkpoint records) to bytecode.
CompiledProgram compile_program(const minic::Program& prog);

}  // namespace foray::sim
