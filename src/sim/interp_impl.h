// The MiniC interpreter core, templated on the trace sink.
//
// This header holds the tree-walking Interp class — the reference engine
// ("oracle") the bytecode VM (sim/vm.h) is differentially tested against
// — plus run_program_with(), the generic entry point that dispatches on
// RunOptions::engine. Callers which know their concrete sink type
// instantiate an engine whose record delivery is fully inlined:
// Interp<core::Extractor> / Vm<core::Extractor> run the paper's online
// analysis with zero virtual calls per record. The generic entry point
// (sim::run_program, interpreter.cpp) instantiates the trace::Sink
// variant and pays one virtual on_chunk() per chunk.
//
// Emission is chunked: records accumulate in a small local buffer
// (RunOptions::chunk_records) and are flushed in bulk by the shared
// TraceEmitter (sim/exec_common.h), so even the virtual-sink
// instantiation performs no per-record dispatch. Value conversion,
// operator semantics, and intrinsics are shared with the VM through
// sim/exec_common.h — the engines cannot drift apart in what an
// operation does, only in how the program is walked.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "jit/engine.h"
#include "minic/intrinsics.h"
#include "sim/exec_common.h"
#include "sim/global_layout.h"
#include "sim/interpreter.h"
#include "sim/resolver.h"
#include "sim/value.h"
#include "sim/vm.h"
#include "util/rng.h"
#include "util/status.h"

namespace foray::sim {

namespace internal {

using minic::AssignOp;
using minic::BaseType;
using minic::BinaryOp;
using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;
using minic::Type;
using minic::UnaryOp;
using minic::VarDecl;
using trace::AccessKind;
using trace::CheckpointType;
using trace::Record;

enum class Flow : uint8_t { Normal, Break, Continue, Return };

struct Slot {
  uint32_t addr = 0;
  Type type;          ///< element type for arrays
  bool is_array = false;
  /// Set when the declaration has executed; a resolved identifier whose
  /// slot is still unbound reproduces the "unbound identifier" fault of
  /// the old dynamic lookup.
  bool bound = false;
  int array_len = -1;
};

struct Lvalue {
  uint32_t addr = 0;
  Type type;          ///< type of the object designated
  AccessKind kind = AccessKind::Data;
  uint32_t instr = 0;
};

template <class SinkT>
class Interp {
 public:
  Interp(const Program& prog, SinkT* sink, const RunOptions& opts)
      : prog_(prog),
        opts_(opts),
        emitter_(sink, opts_),
        res_(resolve_variables(prog)),
        mem_(opts.heap_capacity, opts.stack_capacity),
        rng_(opts.rng_seed),
        max_steps_(opts.budget.effective_max_steps()) {}

  RunResult run() {
    RunResult result;
    execute_guarded(&result, &cur_line_, [&] {
      alloc_globals();
      const Function* main_fn = prog_.find_function("main");
      FORAY_CHECK(main_fn != nullptr, "sema guarantees main exists");
      Value ret = call_function(*main_fn, {}, /*call_node=*/-1);
      result.exit_code = static_cast<int>(ret.as_int());
    });
    finalize_result(&result, &emitter_, &mem_, opts_, &output_, steps_);
    return result;
  }

  // -- Host interface for the shared intrinsic runner ------------------------

  Memory& memory() { return mem_; }
  util::Rng& rng() { return rng_; }

  void append_output(const std::string& s) {
    append_output_limited(&output_, opts_.max_output_bytes, s);
  }

  void emit_access(uint32_t instr, uint32_t addr, uint8_t size,
                   bool is_write, AccessKind kind) {
    emitter_.emit_access(instr, addr, size, is_write, kind);
  }

 private:
  // -- bookkeeping ----------------------------------------------------------

  void step() {
    if (++steps_ > max_steps_) {
      throw RuntimeError("step limit exceeded (" +
                             std::to_string(opts_.budget.max_steps) + ")",
                         util::ErrorCode::kResourceExhausted);
    }
  }

  // -- environment ----------------------------------------------------------
  //
  // Variables are pre-resolved (sim/resolver.h): globals live in a flat
  // table, locals in one arena indexed by frame base + static slot.

  struct Frame {
    uint32_t saved_sp;
    size_t locals_base;
    Value ret_value = Value::of_int(0);
  };

  const Slot* lookup(const Expr& e) const {
    const VarResolution::Binding& b =
        res_.ident[static_cast<size_t>(e.node_id)];
    if (b.resolved) {
      const Slot* slot;
      if (b.global) {
        slot = &global_slots_[static_cast<size_t>(b.index)];
      } else {
        FORAY_CHECK(!frames_.empty(), "local reference outside any frame");
        slot = &locals_arena_[frames_.back().locals_base +
                              static_cast<size_t>(b.index)];
      }
      if (slot->bound) return slot;
    }
    throw RuntimeError("unbound identifier '" + e.name + "'");
  }

  void alloc_globals() {
    global_slots_.reserve(static_cast<size_t>(res_.globals));
    for (const VarDecl& d : prog_.globals) {
      Slot slot;
      slot.type = d.type;
      slot.is_array = d.array_len >= 0;
      slot.array_len = d.array_len;
      slot.bound = true;
      const GlobalShape shape = global_shape(d);
      slot.addr = mem_.alloc_global(shape.bytes, shape.align);
      global_slots_.push_back(slot);
      init_slot(slot, d);
    }
  }

  /// Runs a declaration's initializer(s), emitting the stores.
  void init_slot(const Slot& slot, const VarDecl& d) {
    // Initializer stores are emitted under the declaration's own node
    // id: the init expression's accesses must stay a separate reference.
    uint32_t elem = static_cast<uint32_t>(d.type.size());
    if (d.init) {
      Value v = eval(*d.init);
      Lvalue lv{slot.addr, d.type, AccessKind::Scalar,
                minic::instr_addr_for_node(d.node_id)};
      store(lv, v);
    }
    for (size_t i = 0; i < d.init_list.size(); ++i) {
      Value v = eval(*d.init_list[i]);
      Lvalue lv{slot.addr + static_cast<uint32_t>(i) * elem, d.type,
                AccessKind::Data,
                minic::instr_addr_for_node(d.node_id)};
      store(lv, v);
    }
  }

  Slot alloc_local(const VarDecl& d) {
    Slot slot;
    slot.type = d.type;
    slot.is_array = d.array_len >= 0;
    slot.array_len = d.array_len;
    slot.bound = true;
    uint32_t elem = static_cast<uint32_t>(d.type.size());
    uint32_t bytes =
        slot.is_array ? elem * static_cast<uint32_t>(d.array_len) : elem;
    slot.addr = mem_.stack_alloc(bytes, elem >= 4 ? 4 : elem);
    FORAY_CHECK(!frames_.empty(), "local declared outside any frame");
    const int32_t idx = res_.decl_slot[static_cast<size_t>(d.node_id)];
    FORAY_CHECK(idx >= 0, "declaration without a resolved slot");
    locals_arena_[frames_.back().locals_base + static_cast<size_t>(idx)] =
        slot;
    return slot;
  }

  // -- memory access --------------------------------------------------------

  Value load(const Lvalue& lv) {
    uint8_t sz = static_cast<uint8_t>(lv.type.size());
    emit_access(lv.instr, lv.addr, sz, /*is_write=*/false, lv.kind);
    if (lv.type.is_float()) {
      return Value::of_float(mem_.load_float(lv.addr));
    }
    Value v = Value::of_int(mem_.load_int(lv.addr, sz), lv.type);
    return v;
  }

  void store(const Lvalue& lv, const Value& v) {
    uint8_t sz = static_cast<uint8_t>(lv.type.size());
    emit_access(lv.instr, lv.addr, sz, /*is_write=*/true, lv.kind);
    if (lv.type.is_float()) {
      mem_.store_float(lv.addr, v.as_float());
    } else {
      mem_.store_int(lv.addr, sz, v.as_int());
    }
  }

  // -- expression evaluation ------------------------------------------------

  Value convert(const Value& v, const Type& t) { return convert_value(v, t); }

  Lvalue lvalue(const Expr& e) {
    step();
    cur_line_ = e.line;
    switch (e.kind) {
      case ExprKind::Ident: {
        const Slot* slot = lookup(e);
        FORAY_CHECK(!slot->is_array, "array is not an lvalue");
        return Lvalue{slot->addr, slot->type, AccessKind::Scalar,
                      minic::instr_addr_for_node(e.node_id)};
      }
      case ExprKind::Unary: {
        FORAY_CHECK(e.un_op == UnaryOp::Deref, "not an lvalue unary");
        Value p = eval(*e.a);
        return Lvalue{p.as_addr(), e.type, AccessKind::Data,
                      minic::instr_addr_for_node(e.node_id)};
      }
      case ExprKind::Index: {
        Value base = eval(*e.a);
        Value idx = eval(*e.b);
        uint32_t elem = static_cast<uint32_t>(e.type.size());
        uint32_t addr = base.as_addr() +
                        static_cast<uint32_t>(idx.as_int()) * elem;
        return Lvalue{addr, e.type, AccessKind::Data,
                      minic::instr_addr_for_node(e.node_id)};
      }
      default:
        throw RuntimeError("expression is not an lvalue");
    }
  }

  Value eval(const Expr& e) {
    step();
    cur_line_ = e.line;
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value::of_int(e.int_val);
      case ExprKind::FloatLit:
        return Value::of_float(e.float_val);
      case ExprKind::StrLit: {
        auto it = interned_.find(e.str_val);
        uint32_t addr;
        if (it == interned_.end()) {
          addr = mem_.alloc_rodata(e.str_val);
          interned_[e.str_val] = addr;
        } else {
          addr = it->second;
        }
        return Value::of_ptr(addr, minic::make_type(BaseType::Char));
      }
      case ExprKind::Ident: {
        const Slot* slot = lookup(e);
        if (slot->is_array) {
          return Value::of_ptr(slot->addr, slot->type);
        }
        Lvalue lv{slot->addr, slot->type, AccessKind::Scalar,
                  minic::instr_addr_for_node(e.node_id)};
        return load(lv);
      }
      case ExprKind::Unary:
        return eval_unary(e);
      case ExprKind::Binary:
        return eval_binary(e);
      case ExprKind::Assign:
        return eval_assign(e);
      case ExprKind::Cond:
        return eval(*e.a).truthy() ? convert(eval(*e.b), e.type)
                                   : convert(eval(*e.c), e.type);
      case ExprKind::Call:
        return eval_call(e);
      case ExprKind::Index: {
        Lvalue lv = lvalue(e);
        return load(lv);
      }
      case ExprKind::Cast:
        return convert(eval(*e.a), e.cast_type);
    }
    throw RuntimeError("unreachable expression kind");
  }

  Value eval_unary(const Expr& e) {
    switch (e.un_op) {
      case UnaryOp::Neg: {
        Value v = eval(*e.a);
        if (v.is_float()) return Value::of_float(-v.f);
        return Value::of_int(-v.i, v.type);
      }
      case UnaryOp::Not:
        return Value::of_int(eval(*e.a).truthy() ? 0 : 1);
      case UnaryOp::BitNot:
        return Value::of_int(~eval(*e.a).as_int());
      case UnaryOp::Deref: {
        Lvalue lv = lvalue(e);
        return load(lv);
      }
      case UnaryOp::AddrOf: {
        Lvalue lv = lvalue(*e.a);
        return Value::of_ptr(lv.addr, lv.type);
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec: {
        Lvalue lv = lvalue(*e.a);
        Value old = load(lv);
        int64_t delta = 1;
        if (lv.type.is_pointer()) delta = lv.type.deref().size();
        bool inc = e.un_op == UnaryOp::PreInc || e.un_op == UnaryOp::PostInc;
        Value updated = convert(
            Value::of_int(old.as_int() + (inc ? delta : -delta), lv.type),
            lv.type);
        store(lv, updated);
        bool post = e.un_op == UnaryOp::PostInc ||
                    e.un_op == UnaryOp::PostDec;
        return post ? old : updated;
      }
    }
    throw RuntimeError("unreachable unary op");
  }

  Value eval_binary(const Expr& e) {
    if (e.bin_op == BinaryOp::LogAnd) {
      if (!eval(*e.a).truthy()) return Value::of_int(0);
      return Value::of_int(eval(*e.b).truthy() ? 1 : 0);
    }
    if (e.bin_op == BinaryOp::LogOr) {
      if (eval(*e.a).truthy()) return Value::of_int(1);
      return Value::of_int(eval(*e.b).truthy() ? 1 : 0);
    }
    Value a = eval(*e.a);
    Value b = eval(*e.b);
    return apply_binary_op(e.bin_op, a, b, e.type);
  }

  Value eval_assign(const Expr& e) {
    Lvalue lv = lvalue(*e.a);
    if (e.as_op == AssignOp::Assign) {
      Value v = convert(eval(*e.b), lv.type);
      store(lv, v);
      return v;
    }
    Value old = load(lv);
    Value rhs = eval(*e.b);
    BinaryOp op;
    switch (e.as_op) {
      case AssignOp::AddA: op = BinaryOp::Add; break;
      case AssignOp::SubA: op = BinaryOp::Sub; break;
      case AssignOp::MulA: op = BinaryOp::Mul; break;
      case AssignOp::DivA: op = BinaryOp::Div; break;
      case AssignOp::ModA: op = BinaryOp::Mod; break;
      case AssignOp::ShlA: op = BinaryOp::Shl; break;
      case AssignOp::ShrA: op = BinaryOp::Shr; break;
      case AssignOp::AndA: op = BinaryOp::BitAnd; break;
      case AssignOp::OrA: op = BinaryOp::BitOr; break;
      case AssignOp::XorA: op = BinaryOp::BitXor; break;
      default:
        throw RuntimeError("unreachable assign op");
    }
    Value v = convert(apply_binary_op(op, old, rhs, lv.type), lv.type);
    store(lv, v);
    return v;
  }

  // -- calls ----------------------------------------------------------------

  Value eval_call(const Expr& e) {
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) args.push_back(eval(*a));
    if (auto intr = minic::find_intrinsic(e.name)) {
      return run_intrinsic(*this, intr->id,
                           minic::instr_addr_for_node(e.node_id), e.line,
                           args.data(), args.size());
    }
    const Function* fn = prog_.find_function(e.name);
    FORAY_CHECK(fn != nullptr, "sema guarantees function exists");
    return call_function(*fn, args, e.node_id);
  }

  Value call_function(const Function& fn, const std::vector<Value>& args,
                      int call_node) {
    (void)call_node;
    if (frames_.size() >= 512) {
      throw RuntimeError("simulated call depth limit exceeded in '" +
                         fn.name + "'");
    }
    if (opts_.emit_calls) emitter_.push(Record::call(fn.func_id));
    Frame frame;
    frame.saved_sp = mem_.sp();
    frame.locals_base = locals_arena_.size();
    frames_.push_back(frame);
    locals_arena_.resize(
        frame.locals_base +
        static_cast<size_t>(res_.func_slots[static_cast<size_t>(fn.func_id)]));
    // Bind parameters: a real compiler stores arguments to the callee's
    // frame; the resulting Scalar writes are the paper's "placing
    // arguments to the stack" references that Step 4 filters out.
    for (size_t i = 0; i < fn.params.size(); ++i) {
      VarDecl pd;
      pd.name = fn.params[i].name;
      pd.type = fn.params[i].type;
      pd.node_id = fn.params[i].node_id;
      Slot slot = alloc_local(pd);
      Lvalue lv{slot.addr, slot.type, AccessKind::Scalar,
                minic::instr_addr_for_node(fn.params[i].node_id)};
      store(lv, convert(args[i], slot.type));
    }
    Flow flow = exec(*fn.body);
    (void)flow;
    Value ret = frames_.back().ret_value;
    mem_.set_sp(frames_.back().saved_sp);
    locals_arena_.resize(frames_.back().locals_base);
    frames_.pop_back();
    if (opts_.emit_calls) emitter_.push(Record::ret(fn.func_id));
    if (!fn.ret.is_void()) ret = convert(ret, fn.ret);
    return ret;
  }

  // -- statements -----------------------------------------------------------

  Flow exec(const Stmt& s) {
    step();
    cur_line_ = s.line;
    switch (s.kind) {
      case StmtKind::Expr:
        if (s.expr) eval(*s.expr);
        return Flow::Normal;
      case StmtKind::Decl:
        for (const VarDecl& d : s.decls) {
          Slot slot = alloc_local(d);
          init_slot(slot, d);
        }
        return Flow::Normal;
      case StmtKind::If:
        if (eval(*s.cond).truthy()) return exec(*s.then_branch);
        if (s.else_branch) return exec(*s.else_branch);
        return Flow::Normal;
      case StmtKind::While:
      case StmtKind::DoWhile:
      case StmtKind::For:
        return exec_loop(s);
      case StmtKind::Block: {
        // Scoping is pre-resolved; only the stack watermark needs undo.
        uint32_t saved_sp = mem_.sp();
        Flow flow = Flow::Normal;
        for (const auto& st : s.stmts) {
          flow = exec(*st);
          if (flow != Flow::Normal) break;
        }
        mem_.set_sp(saved_sp);
        return flow;
      }
      case StmtKind::Return:
        if (s.expr) frames_.back().ret_value = eval(*s.expr);
        return Flow::Return;
      case StmtKind::Break:
        return Flow::Break;
      case StmtKind::Continue:
        return Flow::Continue;
      case StmtKind::Empty:
        return Flow::Normal;
    }
    throw RuntimeError("unreachable statement kind");
  }

  Flow exec_loop(const Stmt& s) {
    uint32_t saved_sp = mem_.sp();
    emitter_.emit_checkpoint(CheckpointType::LoopEnter, s.loop_id);

    Flow out = Flow::Normal;
    if (s.kind == StmtKind::For && s.init) {
      Flow f = exec(*s.init);
      FORAY_CHECK(f == Flow::Normal, "for-init cannot break");
    }
    bool first = true;
    for (;;) {
      if (s.kind == StmtKind::DoWhile && first) {
        // do-while runs the body before the first condition check.
      } else if (s.kind == StmtKind::DoWhile || s.cond != nullptr) {
        if (!eval(*s.cond).truthy()) break;
      } else if (s.kind == StmtKind::For && s.cond == nullptr) {
        // for(;;): no condition — runs until break/return.
      }
      first = false;
      emitter_.emit_checkpoint(CheckpointType::BodyBegin, s.loop_id);
      Flow flow = exec(*s.body);
      if (flow == Flow::Break) break;
      if (flow == Flow::Return) {
        out = Flow::Return;
        break;
      }
      emitter_.emit_checkpoint(CheckpointType::BodyEnd, s.loop_id);
      if (s.kind == StmtKind::For && s.step) eval(*s.step);
    }

    emitter_.emit_checkpoint(CheckpointType::LoopExit, s.loop_id);
    mem_.set_sp(saved_sp);
    return out;
  }

  const Program& prog_;
  RunOptions opts_;
  TraceEmitter<SinkT> emitter_;
  VarResolution res_;
  Memory mem_;
  util::Rng rng_;
  std::vector<Slot> global_slots_;
  std::vector<Slot> locals_arena_;
  std::unordered_map<std::string, uint32_t> interned_;
  std::vector<Frame> frames_;
  std::string output_;
  uint64_t steps_ = 0;
  const uint64_t max_steps_;  ///< budget.effective_max_steps(), cached
  int cur_line_ = 0;
};

}  // namespace internal

/// Executes `prog` (which must have passed sema) from main(), streaming
/// trace records into the concrete sink `*sink` — the devirtualized
/// variant of run_program() for callers that know their sink type.
/// Dispatches on RunOptions::engine: the bytecode VM by default, the
/// native jit engine (which degrades to the VM on unsupported builds)
/// or the tree walker when the caller pins one (or sets FORAY_ENGINE).
template <class SinkT>
RunResult run_program_with(const minic::Program& prog, SinkT* sink,
                           const RunOptions& opts = {}) {
  if (opts.engine == Engine::Bytecode) {
    return run_bytecode_with(prog, sink, opts);
  }
  if (opts.engine == Engine::Jit) {
    return jit::run_jit_with(prog, sink, opts);
  }
  internal::Interp<SinkT> interp(prog, sink, opts);
  return interp.run();
}

}  // namespace foray::sim
