// The MiniC interpreter core, templated on the trace sink.
//
// This header holds the whole Interp class so that callers which know
// their concrete sink type can instantiate an interpreter whose record
// delivery is fully inlined: Interp<core::Extractor> runs the paper's
// online analysis with zero virtual calls per record. The generic entry
// point (sim::run_program, interpreter.cpp) instantiates
// Interp<trace::Sink> and pays one virtual on_chunk() per chunk.
//
// Emission is chunked: records accumulate in a small local buffer
// (RunOptions::chunk_records) and are flushed in bulk, so even the
// virtual-sink instantiation performs no per-record dispatch.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "minic/intrinsics.h"
#include "sim/interpreter.h"
#include "sim/resolver.h"
#include "sim/value.h"
#include "util/rng.h"
#include "util/status.h"

namespace foray::sim {

namespace internal {

using minic::AssignOp;
using minic::BaseType;
using minic::BinaryOp;
using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;
using minic::Type;
using minic::UnaryOp;
using minic::VarDecl;
using trace::AccessKind;
using trace::CheckpointType;
using trace::Record;

/// Thrown by the exit() intrinsic to unwind the whole simulation.
struct ExitSignal {
  int code;
};

enum class Flow : uint8_t { Normal, Break, Continue, Return };

struct Slot {
  uint32_t addr = 0;
  Type type;          ///< element type for arrays
  bool is_array = false;
  /// Set when the declaration has executed; a resolved identifier whose
  /// slot is still unbound reproduces the "unbound identifier" fault of
  /// the old dynamic lookup.
  bool bound = false;
  int array_len = -1;
};

struct Lvalue {
  uint32_t addr = 0;
  Type type;          ///< type of the object designated
  AccessKind kind = AccessKind::Data;
  uint32_t instr = 0;
};

template <class SinkT>
class Interp {
 public:
  Interp(const Program& prog, SinkT* sink, const RunOptions& opts)
      : prog_(prog),
        sink_(sink),
        opts_(opts),
        res_(resolve_variables(prog)),
        chunk_(std::max<size_t>(opts.chunk_records, 1)),
        mem_(opts.heap_capacity, opts.stack_capacity),
        rng_(opts.rng_seed) {}

  RunResult run() {
    RunResult result;
    try {
      alloc_globals();
      const Function* main_fn = prog_.find_function("main");
      FORAY_CHECK(main_fn != nullptr, "sema guarantees main exists");
      Value ret = call_function(*main_fn, {}, /*call_node=*/-1);
      result.exit_code = static_cast<int>(ret.as_int());
    } catch (const ExitSignal& e) {
      result.exit_code = e.code;
    } catch (const RuntimeError& e) {
      result.status = util::Status::failure("simulation", cur_line_, e.what());
    }
    // Deliver the tail chunk on every outcome — a faulted run's trace
    // must still contain everything up to the fault.
    flush();
    result.output = std::move(output_);
    result.steps = steps_;
    result.accesses = accesses_;
    return result;
  }

 private:
  // -- bookkeeping ----------------------------------------------------------

  void step() {
    if (++steps_ > opts_.max_steps) {
      throw RuntimeError("step limit exceeded (" +
                         std::to_string(opts_.max_steps) + ")");
    }
  }

  // -- chunked record transport ---------------------------------------------
  //
  // Records collect in a small local buffer and are handed to the sink
  // in bulk. When SinkT is a concrete final sink (the online Extractor)
  // the on_chunk() call devirtualizes and the whole per-record path
  // inlines; even for SinkT = trace::Sink only one virtual call per
  // chunk remains.

  void push(const Record& r) {
    chunk_[chunk_len_++] = r;
    if (chunk_len_ == chunk_.size()) flush();
  }

  void flush() {
    if (chunk_len_ != 0) {
      sink_->on_chunk(chunk_.data(), chunk_len_);
      chunk_len_ = 0;
    }
  }

  void emit_access(uint32_t instr, uint32_t addr, uint8_t size,
                   bool is_write, AccessKind kind) {
    ++accesses_;
    switch (kind) {
      case AccessKind::Scalar:
        if (!opts_.trace_scalars) return;
        break;
      case AccessKind::Data:
        if (!opts_.trace_data) return;
        break;
      case AccessKind::System:
        if (!opts_.trace_system) return;
        break;
    }
    push(Record::access(instr, addr, size, is_write, kind));
  }

  void emit_checkpoint(CheckpointType t, int loop_id) {
    if (opts_.emit_checkpoints && loop_id >= 0) {
      push(Record::checkpoint(t, loop_id));
    }
  }

  void append_output(const std::string& s) {
    if (output_.size() + s.size() > opts_.max_output_bytes) {
      throw RuntimeError("simulated program output limit exceeded");
    }
    output_ += s;
  }

  // -- environment ----------------------------------------------------------
  //
  // Variables are pre-resolved (sim/resolver.h): globals live in a flat
  // table, locals in one arena indexed by frame base + static slot. The
  // old per-scope string maps — and their per-block construction — are
  // gone from the simulation loop entirely.

  struct Frame {
    uint32_t saved_sp;
    size_t locals_base;
    Value ret_value = Value::of_int(0);
  };

  const Slot* lookup(const Expr& e) const {
    const VarResolution::Binding& b =
        res_.ident[static_cast<size_t>(e.node_id)];
    if (b.resolved) {
      const Slot* slot;
      if (b.global) {
        slot = &global_slots_[static_cast<size_t>(b.index)];
      } else {
        FORAY_CHECK(!frames_.empty(), "local reference outside any frame");
        slot = &locals_arena_[frames_.back().locals_base +
                              static_cast<size_t>(b.index)];
      }
      if (slot->bound) return slot;
    }
    throw RuntimeError("unbound identifier '" + e.name + "'");
  }

  void alloc_globals() {
    global_slots_.reserve(static_cast<size_t>(res_.globals));
    for (const VarDecl& d : prog_.globals) {
      Slot slot;
      slot.type = d.type;
      slot.is_array = d.array_len >= 0;
      slot.array_len = d.array_len;
      slot.bound = true;
      uint32_t elem = static_cast<uint32_t>(d.type.size());
      uint32_t bytes = slot.is_array
                           ? elem * static_cast<uint32_t>(d.array_len)
                           : elem;
      slot.addr = mem_.alloc_global(bytes, elem >= 4 ? 4 : elem);
      global_slots_.push_back(slot);
      init_slot(slot, d);
    }
  }

  /// Runs a declaration's initializer(s), emitting the stores.
  void init_slot(const Slot& slot, const VarDecl& d) {
    // Initializer stores are emitted under the declaration's own node
    // id: the init expression's accesses must stay a separate reference.
    uint32_t elem = static_cast<uint32_t>(d.type.size());
    if (d.init) {
      Value v = eval(*d.init);
      Lvalue lv{slot.addr, d.type, AccessKind::Scalar,
                minic::instr_addr_for_node(d.node_id)};
      store(lv, v);
    }
    for (size_t i = 0; i < d.init_list.size(); ++i) {
      Value v = eval(*d.init_list[i]);
      Lvalue lv{slot.addr + static_cast<uint32_t>(i) * elem, d.type,
                AccessKind::Data,
                minic::instr_addr_for_node(d.node_id)};
      store(lv, v);
    }
  }

  Slot alloc_local(const VarDecl& d) {
    Slot slot;
    slot.type = d.type;
    slot.is_array = d.array_len >= 0;
    slot.array_len = d.array_len;
    slot.bound = true;
    uint32_t elem = static_cast<uint32_t>(d.type.size());
    uint32_t bytes =
        slot.is_array ? elem * static_cast<uint32_t>(d.array_len) : elem;
    slot.addr = mem_.stack_alloc(bytes, elem >= 4 ? 4 : elem);
    FORAY_CHECK(!frames_.empty(), "local declared outside any frame");
    const int32_t idx = res_.decl_slot[static_cast<size_t>(d.node_id)];
    FORAY_CHECK(idx >= 0, "declaration without a resolved slot");
    locals_arena_[frames_.back().locals_base + static_cast<size_t>(idx)] =
        slot;
    return slot;
  }

  // -- memory access --------------------------------------------------------

  Value load(const Lvalue& lv) {
    uint8_t sz = static_cast<uint8_t>(lv.type.size());
    emit_access(lv.instr, lv.addr, sz, /*is_write=*/false, lv.kind);
    if (lv.type.is_float()) {
      return Value::of_float(mem_.load_float(lv.addr));
    }
    Value v = Value::of_int(mem_.load_int(lv.addr, sz), lv.type);
    return v;
  }

  void store(const Lvalue& lv, const Value& v) {
    uint8_t sz = static_cast<uint8_t>(lv.type.size());
    emit_access(lv.instr, lv.addr, sz, /*is_write=*/true, lv.kind);
    if (lv.type.is_float()) {
      mem_.store_float(lv.addr, v.as_float());
    } else {
      mem_.store_int(lv.addr, sz, v.as_int());
    }
  }

  // -- expression evaluation ------------------------------------------------

  Value convert(const Value& v, const Type& t) {
    if (t.is_float()) return Value::of_float(v.as_float());
    if (t.is_pointer()) {
      Value out = v;
      out.type = t;
      out.i = static_cast<int64_t>(v.as_addr());
      return out;
    }
    int64_t x = v.as_int();
    switch (t.base) {
      case BaseType::Char: x = static_cast<int8_t>(x); break;
      case BaseType::Short: x = static_cast<int16_t>(x); break;
      case BaseType::Int: x = static_cast<int32_t>(x); break;
      default: break;
    }
    return Value::of_int(x, t);
  }

  Lvalue lvalue(const Expr& e) {
    step();
    cur_line_ = e.line;
    switch (e.kind) {
      case ExprKind::Ident: {
        const Slot* slot = lookup(e);
        FORAY_CHECK(!slot->is_array, "array is not an lvalue");
        return Lvalue{slot->addr, slot->type, AccessKind::Scalar,
                      minic::instr_addr_for_node(e.node_id)};
      }
      case ExprKind::Unary: {
        FORAY_CHECK(e.un_op == UnaryOp::Deref, "not an lvalue unary");
        Value p = eval(*e.a);
        return Lvalue{p.as_addr(), e.type, AccessKind::Data,
                      minic::instr_addr_for_node(e.node_id)};
      }
      case ExprKind::Index: {
        Value base = eval(*e.a);
        Value idx = eval(*e.b);
        uint32_t elem = static_cast<uint32_t>(e.type.size());
        uint32_t addr = base.as_addr() +
                        static_cast<uint32_t>(idx.as_int()) * elem;
        return Lvalue{addr, e.type, AccessKind::Data,
                      minic::instr_addr_for_node(e.node_id)};
      }
      default:
        throw RuntimeError("expression is not an lvalue");
    }
  }

  Value eval(const Expr& e) {
    step();
    cur_line_ = e.line;
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value::of_int(e.int_val);
      case ExprKind::FloatLit:
        return Value::of_float(e.float_val);
      case ExprKind::StrLit: {
        auto it = interned_.find(e.str_val);
        uint32_t addr;
        if (it == interned_.end()) {
          addr = mem_.alloc_rodata(e.str_val);
          interned_[e.str_val] = addr;
        } else {
          addr = it->second;
        }
        return Value::of_ptr(addr, minic::make_type(BaseType::Char));
      }
      case ExprKind::Ident: {
        const Slot* slot = lookup(e);
        if (slot->is_array) {
          return Value::of_ptr(slot->addr, slot->type);
        }
        Lvalue lv{slot->addr, slot->type, AccessKind::Scalar,
                  minic::instr_addr_for_node(e.node_id)};
        return load(lv);
      }
      case ExprKind::Unary:
        return eval_unary(e);
      case ExprKind::Binary:
        return eval_binary(e);
      case ExprKind::Assign:
        return eval_assign(e);
      case ExprKind::Cond:
        return eval(*e.a).truthy() ? convert(eval(*e.b), e.type)
                                   : convert(eval(*e.c), e.type);
      case ExprKind::Call:
        return eval_call(e);
      case ExprKind::Index: {
        Lvalue lv = lvalue(e);
        return load(lv);
      }
      case ExprKind::Cast:
        return convert(eval(*e.a), e.cast_type);
    }
    throw RuntimeError("unreachable expression kind");
  }

  Value eval_unary(const Expr& e) {
    switch (e.un_op) {
      case UnaryOp::Neg: {
        Value v = eval(*e.a);
        if (v.is_float()) return Value::of_float(-v.f);
        return Value::of_int(-v.i, v.type);
      }
      case UnaryOp::Not:
        return Value::of_int(eval(*e.a).truthy() ? 0 : 1);
      case UnaryOp::BitNot:
        return Value::of_int(~eval(*e.a).as_int());
      case UnaryOp::Deref: {
        Lvalue lv = lvalue(e);
        return load(lv);
      }
      case UnaryOp::AddrOf: {
        Lvalue lv = lvalue(*e.a);
        return Value::of_ptr(lv.addr, lv.type);
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec: {
        Lvalue lv = lvalue(*e.a);
        Value old = load(lv);
        int64_t delta = 1;
        if (lv.type.is_pointer()) delta = lv.type.deref().size();
        bool inc = e.un_op == UnaryOp::PreInc || e.un_op == UnaryOp::PostInc;
        Value updated = convert(
            Value::of_int(old.as_int() + (inc ? delta : -delta), lv.type),
            lv.type);
        store(lv, updated);
        bool post = e.un_op == UnaryOp::PostInc ||
                    e.un_op == UnaryOp::PostDec;
        return post ? old : updated;
      }
    }
    throw RuntimeError("unreachable unary op");
  }

  Value eval_binary(const Expr& e) {
    if (e.bin_op == BinaryOp::LogAnd) {
      if (!eval(*e.a).truthy()) return Value::of_int(0);
      return Value::of_int(eval(*e.b).truthy() ? 1 : 0);
    }
    if (e.bin_op == BinaryOp::LogOr) {
      if (eval(*e.a).truthy()) return Value::of_int(1);
      return Value::of_int(eval(*e.b).truthy() ? 1 : 0);
    }
    Value a = eval(*e.a);
    Value b = eval(*e.b);
    return apply_binary(e.bin_op, a, b, e.type);
  }

  Value apply_binary(BinaryOp op, const Value& a, const Value& b,
                     const Type& result_type) {
    // Pointer arithmetic scales by pointee size.
    if (op == BinaryOp::Add || op == BinaryOp::Sub) {
      if (a.type.is_pointer() && b.type.is_pointer()) {
        FORAY_CHECK(op == BinaryOp::Sub, "sema rejects ptr+ptr");
        int64_t sz = a.type.deref().size();
        if (sz == 0) sz = 1;
        return Value::of_int((a.i - b.i) / sz);
      }
      if (a.type.is_pointer()) {
        int64_t sz = a.type.deref().size();
        int64_t off = b.as_int() * sz;
        return Value::of_int(op == BinaryOp::Add ? a.i + off : a.i - off,
                             a.type);
      }
      if (b.type.is_pointer()) {
        int64_t sz = b.type.deref().size();
        return Value::of_int(b.i + a.as_int() * sz, b.type);
      }
    }
    const bool flt = a.is_float() || b.is_float();
    switch (op) {
      case BinaryOp::Add:
        return flt ? Value::of_float(a.as_float() + b.as_float())
                   : Value::of_int(a.i + b.i, result_type);
      case BinaryOp::Sub:
        return flt ? Value::of_float(a.as_float() - b.as_float())
                   : Value::of_int(a.i - b.i, result_type);
      case BinaryOp::Mul:
        return flt ? Value::of_float(a.as_float() * b.as_float())
                   : Value::of_int(a.i * b.i, result_type);
      case BinaryOp::Div:
        if (flt) {
          return Value::of_float(a.as_float() / b.as_float());
        }
        if (b.i == 0) throw RuntimeError("integer division by zero");
        return Value::of_int(a.i / b.i, result_type);
      case BinaryOp::Mod:
        if (b.as_int() == 0) throw RuntimeError("modulo by zero");
        return Value::of_int(a.as_int() % b.as_int());
      case BinaryOp::Shl:
        return Value::of_int(a.as_int() << (b.as_int() & 63));
      case BinaryOp::Shr:
        return Value::of_int(a.as_int() >> (b.as_int() & 63));
      case BinaryOp::Lt:
        return Value::of_int(flt ? a.as_float() < b.as_float()
                                 : a.i < b.i);
      case BinaryOp::Gt:
        return Value::of_int(flt ? a.as_float() > b.as_float()
                                 : a.i > b.i);
      case BinaryOp::Le:
        return Value::of_int(flt ? a.as_float() <= b.as_float()
                                 : a.i <= b.i);
      case BinaryOp::Ge:
        return Value::of_int(flt ? a.as_float() >= b.as_float()
                                 : a.i >= b.i);
      case BinaryOp::Eq:
        return Value::of_int(flt ? a.as_float() == b.as_float()
                                 : a.i == b.i);
      case BinaryOp::Ne:
        return Value::of_int(flt ? a.as_float() != b.as_float()
                                 : a.i != b.i);
      case BinaryOp::BitAnd:
        return Value::of_int(a.as_int() & b.as_int());
      case BinaryOp::BitOr:
        return Value::of_int(a.as_int() | b.as_int());
      case BinaryOp::BitXor:
        return Value::of_int(a.as_int() ^ b.as_int());
      case BinaryOp::LogAnd:
      case BinaryOp::LogOr:
        break;  // handled by caller (short circuit)
    }
    throw RuntimeError("unreachable binary op");
  }

  Value eval_assign(const Expr& e) {
    Lvalue lv = lvalue(*e.a);
    if (e.as_op == AssignOp::Assign) {
      Value v = convert(eval(*e.b), lv.type);
      store(lv, v);
      return v;
    }
    Value old = load(lv);
    Value rhs = eval(*e.b);
    BinaryOp op;
    switch (e.as_op) {
      case AssignOp::AddA: op = BinaryOp::Add; break;
      case AssignOp::SubA: op = BinaryOp::Sub; break;
      case AssignOp::MulA: op = BinaryOp::Mul; break;
      case AssignOp::DivA: op = BinaryOp::Div; break;
      case AssignOp::ModA: op = BinaryOp::Mod; break;
      case AssignOp::ShlA: op = BinaryOp::Shl; break;
      case AssignOp::ShrA: op = BinaryOp::Shr; break;
      case AssignOp::AndA: op = BinaryOp::BitAnd; break;
      case AssignOp::OrA: op = BinaryOp::BitOr; break;
      case AssignOp::XorA: op = BinaryOp::BitXor; break;
      default:
        throw RuntimeError("unreachable assign op");
    }
    Value v = convert(apply_binary(op, old, rhs, lv.type), lv.type);
    store(lv, v);
    return v;
  }

  // -- calls ----------------------------------------------------------------

  Value eval_call(const Expr& e) {
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) args.push_back(eval(*a));
    if (auto intr = minic::find_intrinsic(e.name)) {
      return eval_intrinsic(e, intr->id, args);
    }
    const Function* fn = prog_.find_function(e.name);
    FORAY_CHECK(fn != nullptr, "sema guarantees function exists");
    return call_function(*fn, args, e.node_id);
  }

  Value call_function(const Function& fn, const std::vector<Value>& args,
                      int call_node) {
    (void)call_node;
    if (frames_.size() >= 512) {
      throw RuntimeError("simulated call depth limit exceeded in '" +
                         fn.name + "'");
    }
    if (opts_.emit_calls) push(Record::call(fn.func_id));
    Frame frame;
    frame.saved_sp = mem_.sp();
    frame.locals_base = locals_arena_.size();
    frames_.push_back(frame);
    locals_arena_.resize(
        frame.locals_base +
        static_cast<size_t>(res_.func_slots[static_cast<size_t>(fn.func_id)]));
    // Bind parameters: a real compiler stores arguments to the callee's
    // frame; the resulting Scalar writes are the paper's "placing
    // arguments to the stack" references that Step 4 filters out.
    for (size_t i = 0; i < fn.params.size(); ++i) {
      VarDecl pd;
      pd.name = fn.params[i].name;
      pd.type = fn.params[i].type;
      pd.node_id = fn.params[i].node_id;
      Slot slot = alloc_local(pd);
      Lvalue lv{slot.addr, slot.type, AccessKind::Scalar,
                minic::instr_addr_for_node(fn.params[i].node_id)};
      store(lv, convert(args[i], slot.type));
    }
    Flow flow = exec(*fn.body);
    (void)flow;
    Value ret = frames_.back().ret_value;
    mem_.set_sp(frames_.back().saved_sp);
    locals_arena_.resize(frames_.back().locals_base);
    frames_.pop_back();
    if (opts_.emit_calls) push(Record::ret(fn.func_id));
    if (!fn.ret.is_void()) ret = convert(ret, fn.ret);
    return ret;
  }

  // -- statements -----------------------------------------------------------

  Flow exec(const Stmt& s) {
    step();
    cur_line_ = s.line;
    switch (s.kind) {
      case StmtKind::Expr:
        if (s.expr) eval(*s.expr);
        return Flow::Normal;
      case StmtKind::Decl:
        for (const VarDecl& d : s.decls) {
          Slot slot = alloc_local(d);
          init_slot(slot, d);
        }
        return Flow::Normal;
      case StmtKind::If:
        if (eval(*s.cond).truthy()) return exec(*s.then_branch);
        if (s.else_branch) return exec(*s.else_branch);
        return Flow::Normal;
      case StmtKind::While:
      case StmtKind::DoWhile:
      case StmtKind::For:
        return exec_loop(s);
      case StmtKind::Block: {
        // Scoping is pre-resolved; only the stack watermark needs undo.
        uint32_t saved_sp = mem_.sp();
        Flow flow = Flow::Normal;
        for (const auto& st : s.stmts) {
          flow = exec(*st);
          if (flow != Flow::Normal) break;
        }
        mem_.set_sp(saved_sp);
        return flow;
      }
      case StmtKind::Return:
        if (s.expr) frames_.back().ret_value = eval(*s.expr);
        return Flow::Return;
      case StmtKind::Break:
        return Flow::Break;
      case StmtKind::Continue:
        return Flow::Continue;
      case StmtKind::Empty:
        return Flow::Normal;
    }
    throw RuntimeError("unreachable statement kind");
  }

  Flow exec_loop(const Stmt& s) {
    uint32_t saved_sp = mem_.sp();
    emit_checkpoint(CheckpointType::LoopEnter, s.loop_id);

    Flow out = Flow::Normal;
    if (s.kind == StmtKind::For && s.init) {
      Flow f = exec(*s.init);
      FORAY_CHECK(f == Flow::Normal, "for-init cannot break");
    }
    bool first = true;
    for (;;) {
      if (s.kind == StmtKind::DoWhile && first) {
        // do-while runs the body before the first condition check.
      } else if (s.kind == StmtKind::DoWhile || s.cond != nullptr) {
        if (!eval(*s.cond).truthy()) break;
      } else if (s.kind == StmtKind::For && s.cond == nullptr) {
        // for(;;): no condition — runs until break/return.
      }
      first = false;
      emit_checkpoint(CheckpointType::BodyBegin, s.loop_id);
      Flow flow = exec(*s.body);
      if (flow == Flow::Break) break;
      if (flow == Flow::Return) {
        out = Flow::Return;
        break;
      }
      emit_checkpoint(CheckpointType::BodyEnd, s.loop_id);
      if (s.kind == StmtKind::For && s.step) eval(*s.step);
    }

    emit_checkpoint(CheckpointType::LoopExit, s.loop_id);
    mem_.set_sp(saved_sp);
    return out;
  }

  // -- intrinsics -----------------------------------------------------------

  /// Reads a NUL-terminated string from simulated memory (no trace).
  std::string read_cstring(uint32_t addr, size_t limit = 1u << 20) {
    std::string out;
    while (out.size() < limit) {
      uint8_t c = mem_.load_byte(addr++);
      if (c == 0) break;
      out.push_back(static_cast<char>(c));
    }
    return out;
  }

  std::string format_printf(const Expr& call, const std::string& fmt,
                            const std::vector<Value>& args) {
    std::string out;
    size_t argi = 1;
    for (size_t i = 0; i < fmt.size(); ++i) {
      if (fmt[i] != '%') {
        out.push_back(fmt[i]);
        continue;
      }
      ++i;
      if (i >= fmt.size()) break;
      if (fmt[i] == '%') {
        out.push_back('%');
        continue;
      }
      // Skip flags / width / precision.
      std::string spec = "%";
      while (i < fmt.size() &&
             (std::isdigit(static_cast<unsigned char>(fmt[i])) ||
              fmt[i] == '.' || fmt[i] == '-' || fmt[i] == '+' ||
              fmt[i] == ' ' || fmt[i] == '0' || fmt[i] == 'l')) {
        if (fmt[i] != 'l') spec.push_back(fmt[i]);
        ++i;
      }
      if (i >= fmt.size()) break;
      char conv = fmt[i];
      if (argi >= args.size() &&
          (conv == 'd' || conv == 'u' || conv == 'x' || conv == 'c' ||
           conv == 's' || conv == 'f' || conv == 'g' || conv == 'e')) {
        throw RuntimeError("printf: not enough arguments");
      }
      char buf[64];
      switch (conv) {
        case 'd': {
          spec += "lld";
          std::snprintf(buf, sizeof buf, spec.c_str(),
                        static_cast<long long>(args[argi++].as_int()));
          out += buf;
          break;
        }
        case 'u': {
          spec += "llu";
          std::snprintf(buf, sizeof buf, spec.c_str(),
                        static_cast<unsigned long long>(
                            args[argi++].as_int()));
          out += buf;
          break;
        }
        case 'x': {
          spec += "llx";
          std::snprintf(buf, sizeof buf, spec.c_str(),
                        static_cast<unsigned long long>(
                            args[argi++].as_int()));
          out += buf;
          break;
        }
        case 'c': {
          out.push_back(static_cast<char>(args[argi++].as_int()));
          break;
        }
        case 'f':
        case 'g':
        case 'e': {
          spec.push_back(conv);
          std::snprintf(buf, sizeof buf, spec.c_str(),
                        args[argi++].as_float());
          out += buf;
          break;
        }
        case 's': {
          uint32_t saddr = args[argi++].as_addr();
          std::string s = read_cstring(saddr);
          // Reading the string payload is system-library traffic.
          uint32_t instr = minic::instr_addr_for_node(call.node_id);
          for (size_t k = 0; k < s.size(); k += 4) {
            emit_access(instr, saddr + static_cast<uint32_t>(k),
                        static_cast<uint8_t>(std::min<size_t>(4,
                                                              s.size() - k)),
                        false, AccessKind::System);
          }
          out += s;
          break;
        }
        default:
          out += spec;
          out.push_back(conv);
      }
    }
    return out;
  }

  Value eval_intrinsic(const Expr& e, minic::Intrinsic id,
                       const std::vector<Value>& args) {
    using minic::Intrinsic;
    uint32_t instr = minic::instr_addr_for_node(e.node_id);
    switch (id) {
      case Intrinsic::Printf: {
        std::string fmt = read_cstring(args[0].as_addr());
        std::string text = format_printf(e, fmt, args);
        append_output(text);
        return Value::of_int(static_cast<int64_t>(text.size()));
      }
      case Intrinsic::Putchar:
        append_output(std::string(1, static_cast<char>(args[0].as_int())));
        return args[0];
      case Intrinsic::Puts: {
        uint32_t saddr = args[0].as_addr();
        std::string s = read_cstring(saddr);
        for (size_t k = 0; k < s.size(); k += 4) {
          emit_access(instr, saddr + static_cast<uint32_t>(k),
                      static_cast<uint8_t>(std::min<size_t>(4, s.size() - k)),
                      false, AccessKind::System);
        }
        append_output(s + "\n");
        return Value::of_int(0);
      }
      case Intrinsic::Malloc: {
        int64_t n = args[0].as_int();
        if (n < 0) throw RuntimeError("malloc of negative size");
        uint32_t addr = mem_.heap_alloc(static_cast<uint32_t>(n));
        return Value::of_ptr(addr, minic::make_type(BaseType::Char));
      }
      case Intrinsic::Free:
        return Value::void_value();
      case Intrinsic::Memset: {
        uint32_t dst = args[0].as_addr();
        uint8_t val = static_cast<uint8_t>(args[1].as_int());
        int64_t n = args[2].as_int();
        if (n < 0) throw RuntimeError("memset of negative size");
        for (int64_t k = 0; k < n; ++k) {
          mem_.store_byte(dst + static_cast<uint32_t>(k), val);
        }
        for (int64_t k = 0; k < n; k += 4) {
          emit_access(instr, dst + static_cast<uint32_t>(k),
                      static_cast<uint8_t>(std::min<int64_t>(4, n - k)),
                      true, AccessKind::System);
        }
        return args[0];
      }
      case Intrinsic::Memcpy: {
        uint32_t dst = args[0].as_addr();
        uint32_t src = args[1].as_addr();
        int64_t n = args[2].as_int();
        if (n < 0) throw RuntimeError("memcpy of negative size");
        for (int64_t k = 0; k < n; ++k) {
          mem_.store_byte(dst + static_cast<uint32_t>(k),
                          mem_.load_byte(src + static_cast<uint32_t>(k)));
        }
        for (int64_t k = 0; k < n; k += 4) {
          uint8_t sz = static_cast<uint8_t>(std::min<int64_t>(4, n - k));
          emit_access(instr, src + static_cast<uint32_t>(k), sz, false,
                      AccessKind::System);
          emit_access(instr, dst + static_cast<uint32_t>(k), sz, true,
                      AccessKind::System);
        }
        return args[0];
      }
      case Intrinsic::Rand:
        return Value::of_int(static_cast<int64_t>(
            rng_.next_below(1u << 30)));
      case Intrinsic::Srand:
        rng_ = util::Rng(static_cast<uint64_t>(args[0].as_int()));
        return Value::void_value();
      case Intrinsic::Abs:
        return Value::of_int(std::llabs(args[0].as_int()));
      case Intrinsic::Sqrtf:
        return Value::of_float(std::sqrt(args[0].as_float()));
      case Intrinsic::Sinf:
        return Value::of_float(std::sin(args[0].as_float()));
      case Intrinsic::Cosf:
        return Value::of_float(std::cos(args[0].as_float()));
      case Intrinsic::Expf:
        return Value::of_float(std::exp(args[0].as_float()));
      case Intrinsic::Logf:
        return Value::of_float(std::log(args[0].as_float()));
      case Intrinsic::Powf:
        return Value::of_float(std::pow(args[0].as_float(),
                                        args[1].as_float()));
      case Intrinsic::Fabsf:
        return Value::of_float(std::fabs(args[0].as_float()));
      case Intrinsic::Floorf:
        return Value::of_float(std::floor(args[0].as_float()));
      case Intrinsic::Assert:
        if (!args[0].truthy()) {
          throw RuntimeError("assertion failed (line " +
                             std::to_string(e.line) + ")");
        }
        return Value::void_value();
      case Intrinsic::Exit:
        throw ExitSignal{static_cast<int>(args[0].as_int())};
    }
    throw RuntimeError("unreachable intrinsic");
  }

  const Program& prog_;
  SinkT* sink_;
  RunOptions opts_;
  VarResolution res_;
  std::vector<Record> chunk_;
  size_t chunk_len_ = 0;
  Memory mem_;
  util::Rng rng_;
  std::vector<Slot> global_slots_;
  std::vector<Slot> locals_arena_;
  std::unordered_map<std::string, uint32_t> interned_;
  std::vector<Frame> frames_;
  std::string output_;
  uint64_t steps_ = 0;
  uint64_t accesses_ = 0;
  int cur_line_ = 0;
};

}  // namespace internal

/// Executes `prog` (which must have passed sema) from main(), streaming
/// trace records into the concrete sink `*sink` — the devirtualized
/// variant of run_program() for callers that know their sink type.
template <class SinkT>
RunResult run_program_with(const minic::Program& prog, SinkT* sink,
                           const RunOptions& opts = {}) {
  internal::Interp<SinkT> interp(prog, sink, opts);
  return interp.run();
}

}  // namespace foray::sim
