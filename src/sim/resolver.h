// Static variable resolution for the interpreter.
//
// The interpreter used to resolve every identifier at evaluation time by
// string lookup through a stack of per-scope hash maps — tens of
// millions of string hashes per simulated run, the single largest cost
// of the profiling loop. MiniC has no closures and no goto, so dynamic
// scoping order equals syntactic order: one pass over the AST can bind
// every Ident expression to either a global index or a frame slot index,
// and every declaration to the frame slot it fills. The interpreter then
// keeps locals in a flat arena indexed by (frame base + slot) — variable
// access becomes two adds and a load.
//
// Exactness: the walk mirrors the interpreter's old dynamic behavior —
// declarations bind before their initializers evaluate (so `int x = x;`
// sees the new x), block scopes shadow outward, duplicate names rebind,
// and a name that never binds stays "unresolved" and only faults if the
// expression actually executes.
#pragma once

#include <cstdint>
#include <vector>

#include "minic/ast.h"

namespace foray::sim {

struct VarResolution {
  struct Binding {
    int32_t index = -1;    ///< global index or frame slot
    bool global = false;
    bool resolved = false;
  };

  /// Indexed by Ident-expression node_id.
  std::vector<Binding> ident;
  /// Indexed by VarDecl / Param node_id: the frame slot it binds.
  std::vector<int32_t> decl_slot;
  /// Indexed by func_id: frame slot count (params + every local).
  std::vector<int32_t> func_slots;
  /// Number of global variables (slots in the interpreter's global
  /// table; later duplicates shadow earlier ones by name, but every
  /// declaration keeps its own slot, matching allocation order).
  int32_t globals = 0;
};

VarResolution resolve_variables(const minic::Program& prog);

}  // namespace foray::sim
