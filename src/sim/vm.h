// The bytecode dispatch-loop VM — the MiniC fast engine.
//
// Executes a CompiledProgram (sim/bytecode.h) against the same Memory,
// Rng, and chunked trace transport as the tree-walking interpreter. Like
// Interp, the class is templated on the sink type: Vm<core::Extractor>
// inlines the whole record path into the dispatch loop (zero virtual
// calls per record), Vm<trace::Sink> pays one virtual on_chunk() per
// chunk. All value semantics (conversion, operator behavior, intrinsic
// effects) come from sim/exec_common.h, shared verbatim with the tree
// walker; the engine-equivalence harness keeps the two bit-identical.
//
// Dispatch uses GNU computed goto where available (each handler ends in
// its own indirect jump, which lets the branch predictor learn opcode
// sequences) and falls back to a plain switch loop elsewhere; the
// handler bodies are written once and shared by both forms. The operand
// stack is a raw pointer into a buffer sized from the compiler's static
// per-function depth bounds, so the hot push/pop path carries no
// capacity checks.
//
// Each opcode body lives in a private always-inline do_<Op>() method
// rather than directly in the dispatch loop: the template JIT
// (src/jit/engine.h) calls the very same methods from its native-code
// handlers, so the VM and the jit engine agree bit-for-bit by
// construction. Step accounting and control flow stay in the
// dispatchers (the VM_NEXT/VM_JUMP glue here, the emitted instruction
// prefixes there).
#pragma once

#include <algorithm>
#include <exception>
#include <string>
#include <vector>

#include "sim/bytecode.h"
#include "sim/exec_common.h"
#include "sim/interpreter.h"
#include "sim/memory.h"
#include "sim/value.h"
#include "util/rng.h"

#if defined(__GNUC__) || defined(__clang__)
#define FORAY_VM_COMPUTED_GOTO 1
#endif

namespace foray::jit {
template <class SinkT>
struct JitOps;  // native-code handler set; friend of Vm (src/jit/engine.h)
}

namespace foray::sim {

namespace internal {

template <class SinkT>
class Vm {
 public:
  Vm(const CompiledProgram& code, SinkT* sink, const RunOptions& opts)
      : code_(code),
        opts_(opts),
        emitter_(sink, opts_),
        mem_(opts.heap_capacity, opts.stack_capacity),
        rng_(opts.rng_seed),
        max_steps_(opts.budget.effective_max_steps()) {}

  // -- Host interface for the shared intrinsic runner ------------------------

  Memory& memory() { return mem_; }
  util::Rng& rng() { return rng_; }

  void append_output(const std::string& s) {
    append_output_limited(&output_, opts_.max_output_bytes, s);
  }

  void emit_access(uint32_t instr, uint32_t addr, uint8_t size,
                   bool is_write, trace::AccessKind kind) {
    emitter_.emit_access(instr, addr, size, is_write, kind);
  }

  // -- execution -------------------------------------------------------------

  RunResult run() {
    return run_guarded([&] { exec(); });
  }

 private:
  template <class S>
  friend struct ::foray::jit::JitOps;

  using Type = minic::Type;
  using AccessKind = trace::AccessKind;

  struct VmSlot {
    uint32_t addr = 0;
    /// Set when the declaration has executed; a resolved identifier whose
    /// slot is still unbound reproduces the tree walker's "unbound
    /// identifier" fault.
    bool bound = false;
  };

  struct InternCell {
    uint32_t addr = 0;
    bool valid = false;
  };

  struct Frame {
    uint32_t return_pc = 0;
    uint32_t saved_sp = 0;
    uint32_t locals_base = 0;
    uint32_t scope_base = 0;
    uint32_t func = 0;
    Value ret_value = Value::of_int(0);
  };

  /// Shared run scaffolding: slot/stack setup, guarded execution of
  /// `body` (the dispatch loop here, the native entry call in the jit
  /// engine), fault classification, and result finalization.
  template <class Body>
  RunResult run_guarded(Body&& body) {
    RunResult result;
    globals_.assign(code_.globals.size(), VmSlot{});
    globals_raw_ = globals_.data();
    interned_.assign(code_.str_pool.size(), InternCell{});
    stack_.resize(static_cast<size_t>(code_.start_max_stack) + 64);
    sp_ = stack_.data();
    execute_guarded(&result, &cur_line_, [&] {
      body();
      result.exit_code = exit_code_;
    });
    finalize_result(&result, &emitter_, &mem_, opts_, &output_, steps_);
    return result;
  }

  [[noreturn]] void step_limit_fault() {
    throw RuntimeError("step limit exceeded (" + std::to_string(max_steps_) +
                           ")",
                       util::ErrorCode::kResourceExhausted);
  }

  [[noreturn]] void throw_unbound(uint32_t name_idx) {
    throw RuntimeError("unbound identifier '" + code_.name_pool[name_idx] +
                       "'");
  }

  /// Guarantees `extra` more operand slots; called once per function
  /// call against the compiler's static depth bound, never per push.
  void ensure_stack(uint32_t extra) {
    const size_t used = static_cast<size_t>(sp_ - stack_.data());
    if (used + extra + 8 > stack_.size()) {
      stack_.resize(std::max(stack_.size() * 2, used + extra + 64));
      sp_ = stack_.data() + used;
    }
  }

  FORAY_ALWAYS_INLINE Value load_typed(const Type& t, uint32_t addr,
                                       uint8_t size) {
    if (t.is_float()) return Value::of_float(mem_.load_float(addr));
    return Value::of_int(mem_.load_int(addr, size), t);
  }

  FORAY_ALWAYS_INLINE void store_typed(const Type& t, uint32_t addr,
                                       uint8_t size, const Value& v) {
    if (t.is_float()) {
      mem_.store_float(addr, v.as_float());
    } else {
      mem_.store_int(addr, size, v.as_int());
    }
  }

  // -- opcode bodies ---------------------------------------------------------
  // One method per opcode; the exact pre-refactor VM_CASE bodies. Jump
  // decisions are returned to the caller (do_pop_truthy / the pc results
  // of do_CallFn and do_ReturnOp); nothing here touches the step count.

  FORAY_ALWAYS_INLINE void do_PushInt(const Insn* ip) {
    *sp_++ = Value::of_int(code_.int_pool[ip->a]);
  }
  FORAY_ALWAYS_INLINE void do_PushFloat(const Insn* ip) {
    *sp_++ = Value::of_float(code_.float_pool[ip->a]);
  }
  FORAY_ALWAYS_INLINE void do_PushStr(const Insn* ip) {
    InternCell& cell = interned_[ip->a];
    if (!cell.valid) {
      cell.addr = mem_.alloc_rodata(code_.str_pool[ip->a]);
      cell.valid = true;
    }
    *sp_++ =
        Value::of_ptr(cell.addr, minic::make_type(minic::BaseType::Char));
  }
  FORAY_ALWAYS_INLINE void do_LoadGlobal(const Insn* ip) {
    const VmSlot s = globals_[ip->a];
    if (!s.bound) throw_unbound(ip->c);
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, s.addr, sz, false, AccessKind::Scalar);
    *sp_++ = load_typed(t, s.addr, sz);
  }
  FORAY_ALWAYS_INLINE void do_LoadLocal(const Insn* ip) {
    const VmSlot s = cur_locals_[ip->a];
    if (!s.bound) throw_unbound(ip->c);
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, s.addr, sz, false, AccessKind::Scalar);
    *sp_++ = load_typed(t, s.addr, sz);
  }
  FORAY_ALWAYS_INLINE void do_PushGlobalPtr(const Insn* ip) {
    const VmSlot s = globals_[ip->a];
    if (!s.bound) throw_unbound(ip->c);
    *sp_++ = Value::of_ptr(s.addr, ip->type());
  }
  FORAY_ALWAYS_INLINE void do_PushLocalPtr(const Insn* ip) {
    const VmSlot s = cur_locals_[ip->a];
    if (!s.bound) throw_unbound(ip->c);
    *sp_++ = Value::of_ptr(s.addr, ip->type());
  }
  [[noreturn]] FORAY_ALWAYS_INLINE void do_ThrowUnbound(const Insn* ip) {
    throw_unbound(ip->a);
  }
  FORAY_ALWAYS_INLINE void do_PushSlotAddr(const Insn* ip) {
    *sp_++ = Value::of_int(cur_locals_[ip->a].addr + ip->b);
  }
  FORAY_ALWAYS_INLINE void do_PushGlobalSlotAddr(const Insn* ip) {
    *sp_++ = Value::of_int(globals_[ip->a].addr + ip->b);
  }
  FORAY_ALWAYS_INLINE void do_IndexAddr(const Insn* ip) {
    --sp_;
    sp_[-1] = Value::of_int(sp_[-1].as_addr() +
                            static_cast<uint32_t>(sp_[0].as_int()) * ip->a);
  }
  FORAY_ALWAYS_INLINE void do_LoadMem(const Insn* ip) {
    const uint32_t addr = (--sp_)->as_addr();
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, addr, sz, false,
                         static_cast<AccessKind>(ip->flags & 0x03));
    *sp_++ = load_typed(t, addr, sz);
  }
  FORAY_ALWAYS_INLINE void do_IndexLoad(const Insn* ip) {
    --sp_;
    const uint32_t addr = sp_[-1].as_addr() +
                          static_cast<uint32_t>(sp_[0].as_int()) * ip->a;
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, addr, sz, false,
                         static_cast<AccessKind>(ip->flags & 0x03));
    sp_[-1] = load_typed(t, addr, sz);
  }
  FORAY_ALWAYS_INLINE void do_StoreMem(const Insn* ip) {
    const Value v = *--sp_;
    const uint32_t addr = (--sp_)->as_addr();
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    const Value cv = convert_value(v, t);
    emitter_.emit_access(ip->b, addr, sz, true,
                         static_cast<AccessKind>(ip->flags & 0x03));
    store_typed(t, addr, sz, cv);
    *sp_++ = cv;
  }
  FORAY_ALWAYS_INLINE void do_IndexStore(const Insn* ip) {
    const Value v = *--sp_;
    const Value idx = *--sp_;
    const Value base = *--sp_;
    const uint32_t addr =
        base.as_addr() + static_cast<uint32_t>(idx.as_int()) * ip->a;
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    const Value cv = convert_value(v, t);
    emitter_.emit_access(ip->b, addr, sz, true,
                         static_cast<AccessKind>(ip->flags & 0x03));
    store_typed(t, addr, sz, cv);
    *sp_++ = cv;
  }
  FORAY_ALWAYS_INLINE void do_StoreInit(const Insn* ip) {
    // Initializer stores write unconverted, exactly like the tree
    // walker's init_slot(): narrowing happens in the memory write.
    const Value v = *--sp_;
    const uint32_t addr = (--sp_)->as_addr();
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, addr, sz, true,
                         static_cast<AccessKind>(ip->flags & 0x03));
    store_typed(t, addr, sz, v);
  }
  FORAY_ALWAYS_INLINE void do_CompoundLoad(const Insn* ip) {
    const uint32_t addr = sp_[-1].as_addr();
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, addr, sz, false,
                         static_cast<AccessKind>(ip->flags & 0x03));
    *sp_++ = load_typed(t, addr, sz);
  }
  FORAY_ALWAYS_INLINE void do_StoreBin(const Insn* ip) {
    const Value rhs = *--sp_;
    const Value old = *--sp_;
    const uint32_t addr = (--sp_)->as_addr();
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    const Value v = convert_value(
        apply_binary_op(static_cast<minic::BinaryOp>(ip->flags >> 2), old,
                        rhs, t),
        t);
    emitter_.emit_access(ip->b, addr, sz, true,
                         static_cast<AccessKind>(ip->flags & 0x03));
    store_typed(t, addr, sz, v);
    *sp_++ = v;
  }
  FORAY_ALWAYS_INLINE void do_CastToPtr(const Insn* ip) {
    const Value v = *--sp_;
    *sp_++ = Value::of_ptr(v.as_addr(), ip->type());
  }
  FORAY_ALWAYS_INLINE void do_Neg(const Insn*) {
    const Value v = *--sp_;
    *sp_++ = v.is_float() ? Value::of_float(-v.f)
                          : Value::of_int(-v.i, v.type);
  }
  FORAY_ALWAYS_INLINE void do_NotOp(const Insn*) {
    sp_[-1] = Value::of_int(sp_[-1].truthy() ? 0 : 1);
  }
  FORAY_ALWAYS_INLINE void do_BitNotOp(const Insn*) {
    sp_[-1] = Value::of_int(~sp_[-1].as_int());
  }
  FORAY_ALWAYS_INLINE void do_Truthy(const Insn*) {
    sp_[-1] = Value::of_int(sp_[-1].truthy() ? 1 : 0);
  }
  FORAY_ALWAYS_INLINE void do_Binary(const Insn* ip) {
    --sp_;
    sp_[-1] = apply_binary_op(static_cast<minic::BinaryOp>(ip->flags),
                              sp_[-1], sp_[0], ip->type());
  }
  FORAY_ALWAYS_INLINE void do_ConvertOp(const Insn* ip) {
    sp_[-1] = convert_value(sp_[-1], ip->type());
  }
  FORAY_ALWAYS_INLINE void do_IncDec(const Insn* ip) {
    const uint32_t addr = (--sp_)->as_addr();
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    const AccessKind kind = static_cast<AccessKind>(ip->flags & 0x03);
    emitter_.emit_access(ip->b, addr, sz, false, kind);
    const Value old = load_typed(t, addr, sz);
    const int64_t delta = static_cast<int32_t>(ip->a);
    const Value updated =
        convert_value(Value::of_int(old.as_int() + delta, t), t);
    emitter_.emit_access(ip->b, addr, sz, true, kind);
    store_typed(t, addr, sz, updated);
    *sp_++ = (ip->flags & 0x04) != 0 ? old : updated;
  }
  FORAY_ALWAYS_INLINE void do_IncDecLocal(const Insn* ip) {
    const VmSlot s = cur_locals_[ip->a];
    if (!s.bound) throw_unbound(ip->c);
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, s.addr, sz, false, AccessKind::Scalar);
    const Value old = load_typed(t, s.addr, sz);
    const int64_t mag = t.is_pointer() ? t.deref().size() : 1;
    const int64_t delta = (ip->flags & 0x08) != 0 ? -mag : mag;
    const Value updated =
        convert_value(Value::of_int(old.as_int() + delta, t), t);
    emitter_.emit_access(ip->b, s.addr, sz, true, AccessKind::Scalar);
    store_typed(t, s.addr, sz, updated);
    *sp_++ = (ip->flags & 0x04) != 0 ? old : updated;
  }
  FORAY_ALWAYS_INLINE void do_IncDecGlobal(const Insn* ip) {
    const VmSlot s = globals_[ip->a];
    if (!s.bound) throw_unbound(ip->c);
    const Type t = ip->type();
    const uint8_t sz = static_cast<uint8_t>(t.size());
    emitter_.emit_access(ip->b, s.addr, sz, false, AccessKind::Scalar);
    const Value old = load_typed(t, s.addr, sz);
    const int64_t mag = t.is_pointer() ? t.deref().size() : 1;
    const int64_t delta = (ip->flags & 0x08) != 0 ? -mag : mag;
    const Value updated =
        convert_value(Value::of_int(old.as_int() + delta, t), t);
    emitter_.emit_access(ip->b, s.addr, sz, true, AccessKind::Scalar);
    store_typed(t, s.addr, sz, updated);
    *sp_++ = (ip->flags & 0x04) != 0 ? old : updated;
  }
  FORAY_ALWAYS_INLINE bool do_pop_truthy() { return (--sp_)->truthy(); }
  FORAY_ALWAYS_INLINE void do_PopV(const Insn*) { --sp_; }
  FORAY_ALWAYS_INLINE void do_SaveSp(const Insn*) {
    sp_scopes_.push_back(mem_.sp());
  }
  FORAY_ALWAYS_INLINE void do_RestoreSp(const Insn*) {
    mem_.set_sp(sp_scopes_.back());
    sp_scopes_.pop_back();
  }
  FORAY_ALWAYS_INLINE void do_RestoreSpN(const Insn* ip) {
    // Unwinds n block scopes at once (break/continue). Restoring
    // straight to the outermost popped scope equals restoring each in
    // turn: set_sp() just moves the pointer.
    const size_t n = ip->a;
    mem_.set_sp(sp_scopes_[sp_scopes_.size() - n]);
    sp_scopes_.resize(sp_scopes_.size() - n);
  }
  FORAY_ALWAYS_INLINE void do_DeclLocal(const Insn* ip) {
    const uint32_t addr = mem_.stack_alloc(ip->b, ip->flags);
    cur_locals_[ip->a] = VmSlot{addr, true};
  }
  FORAY_ALWAYS_INLINE void do_DeclGlobal(const Insn* ip) {
    const GlobalMeta& m = code_.globals[ip->a];
    const uint32_t addr = mem_.alloc_global(m.bytes, m.align);
    globals_[ip->a] = VmSlot{addr, true};
  }
  /// Pushes the callee frame and returns the pc to jump to (f.entry).
  FORAY_ALWAYS_INLINE uint32_t do_CallFn(const Insn* ip) {
    const CompiledFunc& f = code_.funcs[ip->a];
    if (frames_.size() >= 512) {
      throw RuntimeError("simulated call depth limit exceeded in '" +
                         f.name + "'");
    }
    ensure_stack(f.max_stack);
    if (opts_.emit_calls) emitter_.push(trace::Record::call(f.func_id));
    Frame fr;
    fr.return_pc = static_cast<uint32_t>(ip - code_.code.data()) + 1;
    fr.saved_sp = mem_.sp();
    fr.locals_base = static_cast<uint32_t>(locals_.size());
    fr.scope_base = static_cast<uint32_t>(sp_scopes_.size());
    fr.func = ip->a;
    frames_.push_back(fr);
    locals_.resize(fr.locals_base + f.num_slots);
    cur_locals_ = locals_.data() + fr.locals_base;
    // Bind parameters: spill each argument to the callee's frame in
    // declaration order — the Scalar writes the paper's Step 4 filters
    // out, with the same stack addresses as the tree walker.
    const size_t nargs = f.params.size();
    const Value* args = sp_ - nargs;
    for (size_t i = 0; i < nargs; ++i) {
      const CompiledFunc::ParamBind& pb = f.params[i];
      const uint32_t addr = mem_.stack_alloc(pb.bytes, pb.align);
      cur_locals_[pb.slot] = VmSlot{addr, true};
      const Value v = convert_value(args[i], pb.type);
      emitter_.emit_access(pb.instr, addr, static_cast<uint8_t>(pb.bytes),
                           true, AccessKind::Scalar);
      store_typed(pb.type, addr, static_cast<uint8_t>(pb.bytes), v);
    }
    sp_ -= nargs;
    return f.entry;
  }
  FORAY_ALWAYS_INLINE void do_CallIntr(const Insn* ip) {
    const size_t argc = ip->flags;
    const Value* args = sp_ - argc;
    const Value result =
        run_intrinsic(*this, static_cast<minic::Intrinsic>(ip->a), ip->b,
                      ip->line, args, argc);
    sp_ -= argc;
    *sp_++ = result;
  }
  FORAY_ALWAYS_INLINE void do_RetValue(const Insn*) {
    frames_.back().ret_value = *--sp_;
  }
  /// Pops the callee frame and returns the pc to jump to (return_pc).
  FORAY_ALWAYS_INLINE uint32_t do_ReturnOp(const Insn*) {
    const Frame fr = frames_.back();
    const CompiledFunc& f = code_.funcs[fr.func];
    Value ret = fr.ret_value;
    mem_.set_sp(fr.saved_sp);
    locals_.resize(fr.locals_base);
    sp_scopes_.resize(fr.scope_base);
    frames_.pop_back();
    cur_locals_ = frames_.empty()
                      ? locals_.data()
                      : locals_.data() + frames_.back().locals_base;
    if (opts_.emit_calls) emitter_.push(trace::Record::ret(f.func_id));
    if (!f.ret.is_void()) ret = convert_value(ret, f.ret);
    *sp_++ = ret;
    return fr.return_pc;
  }
  FORAY_ALWAYS_INLINE void do_CheckpointOp(const Insn* ip) {
    emitter_.emit_checkpoint(static_cast<trace::CheckpointType>(ip->flags),
                             static_cast<int32_t>(ip->a));
  }
  FORAY_ALWAYS_INLINE void do_Halt(const Insn*) {
    exit_code_ = static_cast<int>((--sp_)->as_int());
  }

  void exec();

  const CompiledProgram& code_;
  RunOptions opts_;
  TraceEmitter<SinkT> emitter_;
  Memory mem_;
  util::Rng rng_;
  uint64_t max_steps_;
  std::vector<Value> stack_;
  Value* sp_ = nullptr;  ///< next free operand slot
  std::vector<VmSlot> globals_;
  VmSlot* globals_raw_ = nullptr;  ///< globals_.data(), for jit-emitted code
  std::vector<VmSlot> locals_;
  VmSlot* cur_locals_ = nullptr;  ///< locals_ slice of the active frame
  std::vector<InternCell> interned_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> sp_scopes_;
  std::string output_;
  uint64_t steps_ = 0;
  int exit_code_ = 0;
  int cur_line_ = 0;
  /// A fault a jit handler caught at the native-code boundary; rethrown
  /// by JitOps::run once control is back in C++ frames (exceptions must
  /// never unwind through emitted code, which has no unwind tables).
  std::exception_ptr jit_pending_;
};

// The handler bodies are shared between the computed-goto and switch
// dispatchers; only the VM_CASE / VM_NEXT / VM_JUMP glue differs.
#ifdef FORAY_VM_COMPUTED_GOTO
#define VM_CASE(name) L_##name:
#define VM_NEXT()                                        \
  do {                                                   \
    ++ip;                                                \
    cur_line_ = ip->line;                                \
    if (++steps > max_steps) step_limit_fault();         \
    goto* kLabels[static_cast<size_t>(ip->op)];          \
  } while (0)
#define VM_JUMP(target)                                  \
  do {                                                   \
    ip = code + (target);                                \
    cur_line_ = ip->line;                                \
    if (++steps > max_steps) step_limit_fault();         \
    goto* kLabels[static_cast<size_t>(ip->op)];          \
  } while (0)
#else
#define VM_CASE(name) case Op::name:
#define VM_NEXT()     \
  do {                \
    ++ip;             \
    goto dispatch;    \
  } while (0)
#define VM_JUMP(target)    \
  do {                     \
    ip = code + (target);  \
    goto dispatch;         \
  } while (0)
#endif

template <class SinkT>
void Vm<SinkT>::exec() {
  const Insn* const code = code_.code.data();
  const Insn* ip = code + code_.start_pc;
  // The step guard runs once per dispatch, so it lives in locals for
  // the duration of the loop: a member counter would be a memory RMW
  // per instruction (the compiler cannot prove the handlers' stores
  // never alias *this). Flushed back to steps_ at Halt and, via the
  // catch-all below, on every faulting exit.
  uint64_t steps = steps_;
  const uint64_t max_steps = max_steps_;
  try {
#ifdef FORAY_VM_COMPUTED_GOTO
#define FORAY_VM_OP_LABEL(name) &&L_##name,
  static const void* const kLabels[] = {FORAY_VM_OPS(FORAY_VM_OP_LABEL)};
#undef FORAY_VM_OP_LABEL
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumOps,
                "dispatch table must cover every opcode");
  cur_line_ = ip->line;
  if (++steps > max_steps) step_limit_fault();
  goto* kLabels[static_cast<size_t>(ip->op)];
#else
dispatch:
  cur_line_ = ip->line;
  if (++steps > max_steps) step_limit_fault();
  switch (ip->op) {
#endif

  VM_CASE(PushInt) {
    do_PushInt(ip);
    VM_NEXT();
  }
  VM_CASE(PushFloat) {
    do_PushFloat(ip);
    VM_NEXT();
  }
  VM_CASE(PushStr) {
    do_PushStr(ip);
    VM_NEXT();
  }
  VM_CASE(LoadGlobal) {
    do_LoadGlobal(ip);
    VM_NEXT();
  }
  VM_CASE(LoadLocal) {
    do_LoadLocal(ip);
    VM_NEXT();
  }
  VM_CASE(PushGlobalPtr) {
    do_PushGlobalPtr(ip);
    VM_NEXT();
  }
  VM_CASE(PushLocalPtr) {
    do_PushLocalPtr(ip);
    VM_NEXT();
  }
  VM_CASE(ThrowUnbound) { do_ThrowUnbound(ip); }
  VM_CASE(PushSlotAddr) {
    do_PushSlotAddr(ip);
    VM_NEXT();
  }
  VM_CASE(PushGlobalSlotAddr) {
    do_PushGlobalSlotAddr(ip);
    VM_NEXT();
  }
  VM_CASE(IndexAddr) {
    do_IndexAddr(ip);
    VM_NEXT();
  }
  VM_CASE(LoadMem) {
    do_LoadMem(ip);
    VM_NEXT();
  }
  VM_CASE(IndexLoad) {
    do_IndexLoad(ip);
    VM_NEXT();
  }
  VM_CASE(StoreMem) {
    do_StoreMem(ip);
    VM_NEXT();
  }
  VM_CASE(IndexStore) {
    do_IndexStore(ip);
    VM_NEXT();
  }
  VM_CASE(StoreInit) {
    do_StoreInit(ip);
    VM_NEXT();
  }
  VM_CASE(CompoundLoad) {
    do_CompoundLoad(ip);
    VM_NEXT();
  }
  VM_CASE(StoreBin) {
    do_StoreBin(ip);
    VM_NEXT();
  }
  VM_CASE(CastToPtr) {
    do_CastToPtr(ip);
    VM_NEXT();
  }
  VM_CASE(Neg) {
    do_Neg(ip);
    VM_NEXT();
  }
  VM_CASE(NotOp) {
    do_NotOp(ip);
    VM_NEXT();
  }
  VM_CASE(BitNotOp) {
    do_BitNotOp(ip);
    VM_NEXT();
  }
  VM_CASE(Truthy) {
    do_Truthy(ip);
    VM_NEXT();
  }
  VM_CASE(Binary) {
    do_Binary(ip);
    VM_NEXT();
  }
  VM_CASE(ConvertOp) {
    do_ConvertOp(ip);
    VM_NEXT();
  }
  VM_CASE(IncDec) {
    do_IncDec(ip);
    VM_NEXT();
  }
  VM_CASE(IncDecLocal) {
    do_IncDecLocal(ip);
    VM_NEXT();
  }
  VM_CASE(IncDecGlobal) {
    do_IncDecGlobal(ip);
    VM_NEXT();
  }
  VM_CASE(Jump) { VM_JUMP(ip->a); }
  VM_CASE(JumpIfFalse) {
    if (do_pop_truthy()) VM_NEXT();
    VM_JUMP(ip->a);
  }
  VM_CASE(JumpIfTrue) {
    if (do_pop_truthy()) VM_JUMP(ip->a);
    VM_NEXT();
  }
  VM_CASE(PopV) {
    do_PopV(ip);
    VM_NEXT();
  }
  VM_CASE(SaveSp) {
    do_SaveSp(ip);
    VM_NEXT();
  }
  VM_CASE(RestoreSp) {
    do_RestoreSp(ip);
    VM_NEXT();
  }
  VM_CASE(RestoreSpN) {
    do_RestoreSpN(ip);
    VM_NEXT();
  }
  VM_CASE(DeclLocal) {
    do_DeclLocal(ip);
    VM_NEXT();
  }
  VM_CASE(DeclGlobal) {
    do_DeclGlobal(ip);
    VM_NEXT();
  }
  VM_CASE(CallFn) { VM_JUMP(do_CallFn(ip)); }
  VM_CASE(CallIntr) {
    do_CallIntr(ip);
    VM_NEXT();
  }
  VM_CASE(RetValue) {
    do_RetValue(ip);
    VM_NEXT();
  }
  VM_CASE(ReturnOp) { VM_JUMP(do_ReturnOp(ip)); }
  VM_CASE(CheckpointOp) {
    do_CheckpointOp(ip);
    VM_NEXT();
  }
  VM_CASE(Halt) {
    do_Halt(ip);
    steps_ = steps;
    return;
  }

#ifndef FORAY_VM_COMPUTED_GOTO
  }
#endif
  } catch (...) {
    steps_ = steps;
    throw;
  }
}

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP

}  // namespace internal

/// Executes an already-compiled program, streaming records into the
/// concrete sink — callers that run one program many times (benches)
/// compile once and reuse.
template <class SinkT>
RunResult run_compiled_with(const CompiledProgram& code, SinkT* sink,
                            const RunOptions& opts = {}) {
  internal::Vm<SinkT> vm(code, sink, opts);
  return vm.run();
}

/// Compiles and executes `prog` on the bytecode VM.
template <class SinkT>
RunResult run_bytecode_with(const minic::Program& prog, SinkT* sink,
                            const RunOptions& opts = {}) {
  const CompiledProgram code = compile_program(prog);
  return run_compiled_with(code, sink, opts);
}

}  // namespace foray::sim
