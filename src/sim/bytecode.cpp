#include "sim/bytecode.h"

#include <cmath>
#include <unordered_map>

#include "sim/global_layout.h"
#include "sim/resolver.h"
#include "trace/record.h"
#include "util/status.h"

namespace foray::sim {

namespace {

using minic::AssignOp;
using minic::BinaryOp;
using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;
using minic::Type;
using minic::UnaryOp;
using minic::VarDecl;
using trace::AccessKind;
using trace::CheckpointType;

uint32_t elem_align(uint32_t elem) { return elem >= 4 ? 4 : elem; }

/// Static facts about the lvalue an expression designates: everything of
/// the tree walker's Lvalue except the runtime address.
struct LvalueInfo {
  Type type;
  AccessKind kind = AccessKind::Data;
  uint32_t instr = 0;
};

class Compiler {
 public:
  explicit Compiler(const Program& prog)
      : prog_(prog), res_(resolve_variables(prog)) {}

  CompiledProgram run() {
    // Function indices are assigned up front so calls can reference
    // callees compiled later; entries are filled in as bodies compile.
    out_.funcs.resize(prog_.funcs.size());
    for (size_t i = 0; i < prog_.funcs.size(); ++i) {
      const Function& fn = *prog_.funcs[i];
      CompiledFunc& cf = out_.funcs[i];
      cf.name = fn.name;
      cf.func_id = fn.func_id;
      cf.ret = fn.ret;
      cf.num_slots = static_cast<uint32_t>(
          res_.func_slots[static_cast<size_t>(fn.func_id)]);
      if (!func_index_.count(fn.name)) {
        func_index_[fn.name] = static_cast<uint32_t>(i);
      }
    }

    compile_start();
    for (size_t i = 0; i < prog_.funcs.size(); ++i) {
      compile_function(static_cast<uint32_t>(i), *prog_.funcs[i]);
    }

    // Per-segment operand-depth bounds. Code lays out as [start segment]
    // [func 0] [func 1] ..., so each segment ends where the next begins.
    uint32_t end = out_.funcs.empty() ? static_cast<uint32_t>(out_.code.size())
                                      : out_.funcs.front().entry;
    out_.start_max_stack = analyze_max_depth(out_.start_pc, end);
    for (size_t i = 0; i < out_.funcs.size(); ++i) {
      end = i + 1 < out_.funcs.size()
                ? out_.funcs[i + 1].entry
                : static_cast<uint32_t>(out_.code.size());
      out_.funcs[i].max_stack = analyze_max_depth(out_.funcs[i].entry, end);
    }
    return std::move(out_);
  }

 private:
  // -- static operand-depth analysis ----------------------------------------

  /// Net operand-stack effect of one instruction; INT32_MIN marks ops
  /// that never fall through (throw / return / halt).
  int32_t stack_effect(const Insn& in) const {
    switch (in.op) {
      case Op::PushInt:
      case Op::PushFloat:
      case Op::PushStr:
      case Op::LoadGlobal:
      case Op::LoadLocal:
      case Op::PushGlobalPtr:
      case Op::PushLocalPtr:
      case Op::PushSlotAddr:
      case Op::PushGlobalSlotAddr:
      case Op::CompoundLoad:
      case Op::IncDecLocal:
      case Op::IncDecGlobal:
        return 1;
      case Op::LoadMem:
      case Op::CastToPtr:
      case Op::Neg:
      case Op::NotOp:
      case Op::BitNotOp:
      case Op::Truthy:
      case Op::ConvertOp:
      case Op::IncDec:
      case Op::Jump:
      case Op::SaveSp:
      case Op::RestoreSp:
      case Op::RestoreSpN:
      case Op::DeclLocal:
      case Op::DeclGlobal:
      case Op::CheckpointOp:
        return 0;
      case Op::IndexAddr:
      case Op::IndexLoad:
      case Op::StoreMem:
      case Op::Binary:
      case Op::PopV:
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
      case Op::RetValue:
        return -1;
      case Op::IndexStore:
      case Op::StoreBin:
      case Op::StoreInit:
        return -2;
      case Op::CallFn:
        return 1 - static_cast<int32_t>(out_.funcs[in.a].params.size());
      case Op::CallIntr:
        return 1 - static_cast<int32_t>(in.flags);
      case Op::ThrowUnbound:
      case Op::ReturnOp:
      case Op::Halt:
        return INT32_MIN;
    }
    return INT32_MIN;
  }

  /// Computes the maximum operand depth reachable anywhere in
  /// [begin, end). Expression codegen gives every pc a statically fixed
  /// depth, so one linear pass with forward propagation suffices; the
  /// consistency check doubles as a compiler self-test.
  uint32_t analyze_max_depth(uint32_t begin, uint32_t end) const {
    const size_t n = end - begin;
    std::vector<int32_t> depth(n, -1);
    if (n == 0) return 0;
    depth[0] = 0;
    int32_t max_depth = 0;
    auto propagate = [&](uint32_t abs_target, int32_t d) {
      FORAY_CHECK(abs_target >= begin && abs_target < end,
                  "jump target escapes its code segment");
      int32_t& slot = depth[abs_target - begin];
      if (slot == -1) {
        slot = d;
      } else {
        FORAY_CHECK(slot == d, "inconsistent operand depth at a join");
      }
    };
    for (size_t i = 0; i < n; ++i) {
      const int32_t d = depth[i];
      if (d < 0) continue;  // dead code (e.g. behind ThrowUnbound)
      const Insn& in = out_.code[begin + i];
      const int32_t eff = stack_effect(in);
      if (eff == INT32_MIN) continue;  // no fall-through
      const int32_t after = d + eff;
      FORAY_CHECK(after >= 0, "operand stack underflow in compiled code");
      if (d + 1 > max_depth) max_depth = d + 1;  // transient peek room
      if (after > max_depth) max_depth = after;
      if (in.op == Op::Jump) {
        propagate(in.a, after);
        continue;
      }
      if (in.op == Op::JumpIfFalse || in.op == Op::JumpIfTrue) {
        propagate(in.a, after);
      }
      if (i + 1 < n) propagate(begin + static_cast<uint32_t>(i) + 1, after);
    }
    return static_cast<uint32_t>(max_depth);
  }

  // -- emission helpers ------------------------------------------------------

  uint32_t here() const { return static_cast<uint32_t>(out_.code.size()); }

  Insn& emit(Op op, int line) {
    Insn in;
    in.op = op;
    in.line = line;
    out_.code.push_back(in);
    return out_.code.back();
  }

  static void set_type(Insn& in, const Type& t) {
    in.tbase = static_cast<uint8_t>(t.base);
    in.tptr = static_cast<uint8_t>(t.ptr);
  }

  void patch(uint32_t at, uint32_t target) { out_.code[at].a = target; }

  uint32_t pool_int(int64_t v) {
    auto it = int_index_.find(v);
    if (it != int_index_.end()) return it->second;
    uint32_t idx = static_cast<uint32_t>(out_.int_pool.size());
    out_.int_pool.push_back(v);
    int_index_[v] = idx;
    return idx;
  }

  uint32_t pool_float(double v) {
    for (size_t i = 0; i < out_.float_pool.size(); ++i) {
      if (out_.float_pool[i] == v && std::signbit(out_.float_pool[i]) ==
                                         std::signbit(v)) {
        return static_cast<uint32_t>(i);
      }
    }
    out_.float_pool.push_back(v);
    return static_cast<uint32_t>(out_.float_pool.size() - 1);
  }

  uint32_t pool_str(const std::string& s) {
    auto it = str_index_.find(s);
    if (it != str_index_.end()) return it->second;
    uint32_t idx = static_cast<uint32_t>(out_.str_pool.size());
    out_.str_pool.push_back(s);
    str_index_[s] = idx;
    return idx;
  }

  uint32_t pool_name(const std::string& s) {
    auto it = name_index_.find(s);
    if (it != name_index_.end()) return it->second;
    uint32_t idx = static_cast<uint32_t>(out_.name_pool.size());
    out_.name_pool.push_back(s);
    name_index_[s] = idx;
    return idx;
  }

  // -- top level -------------------------------------------------------------

  void compile_start() {
    out_.start_pc = here();
    // Globals allocate and initialize strictly in declaration order,
    // interleaved exactly like the tree walker's alloc_globals().
    out_.globals.reserve(prog_.globals.size());
    for (size_t g = 0; g < prog_.globals.size(); ++g) {
      const VarDecl& d = prog_.globals[g];
      const GlobalShape shape = global_shape(d);
      GlobalMeta meta;
      meta.bytes = shape.bytes;
      meta.align = shape.align;
      out_.globals.push_back(meta);
      global_meta_.push_back(SlotMeta{d.type, d.array_len >= 0, true});

      Insn& decl = emit(Op::DeclGlobal, d.line);
      decl.a = static_cast<uint32_t>(g);
      compile_initializers(d, /*global_slot=*/static_cast<int64_t>(g),
                           /*local_slot=*/-1);
    }
    const Function* main_fn = prog_.find_function("main");
    FORAY_CHECK(main_fn != nullptr, "sema guarantees main exists");
    Insn& call = emit(Op::CallFn, main_fn->line);
    call.a = func_index_.at("main");
    emit(Op::Halt, main_fn->line);
  }

  /// Initializer stores for one declaration (global or local). The slot
  /// address is pushed via PushSlotAddr ops, which emit no trace, so the
  /// store order equals the tree walker's eval-then-store.
  void compile_initializers(const VarDecl& d, int64_t global_slot,
                            int64_t local_slot) {
    const uint32_t elem = static_cast<uint32_t>(d.type.size());
    const uint32_t instr = minic::instr_addr_for_node(d.node_id);
    auto push_addr = [&](uint32_t offset) {
      Insn& in = emit(global_slot >= 0 ? Op::PushGlobalSlotAddr
                                       : Op::PushSlotAddr,
                      d.line);
      in.a = static_cast<uint32_t>(global_slot >= 0 ? global_slot
                                                    : local_slot);
      in.b = offset;
    };
    if (d.init) {
      push_addr(0);
      compile_expr(*d.init);
      Insn& st = emit(Op::StoreInit, d.line);
      st.b = instr;
      st.flags = static_cast<uint8_t>(AccessKind::Scalar);
      set_type(st, d.type);
    }
    for (size_t i = 0; i < d.init_list.size(); ++i) {
      push_addr(static_cast<uint32_t>(i) * elem);
      compile_expr(*d.init_list[i]);
      Insn& st = emit(Op::StoreInit, d.line);
      st.b = instr;
      st.flags = static_cast<uint8_t>(AccessKind::Data);
      set_type(st, d.type);
    }
  }

  void compile_function(uint32_t index, const Function& fn) {
    CompiledFunc& cf = out_.funcs[index];
    cf.entry = here();
    local_meta_.assign(cf.num_slots, SlotMeta{});
    cf.params.reserve(fn.params.size());
    for (const auto& p : fn.params) {
      const int32_t slot = res_.decl_slot[static_cast<size_t>(p.node_id)];
      FORAY_CHECK(slot >= 0, "parameter without a resolved slot");
      local_meta_[static_cast<size_t>(slot)] =
          SlotMeta{p.type, /*is_array=*/false, true};
      CompiledFunc::ParamBind pb;
      pb.slot = static_cast<uint32_t>(slot);
      pb.type = p.type;
      pb.bytes = static_cast<uint32_t>(p.type.size());
      pb.align = elem_align(pb.bytes);
      pb.instr = minic::instr_addr_for_node(p.node_id);
      cf.params.push_back(pb);
    }
    scope_depth_ = 0;
    compile_stmt(*fn.body);
    emit(Op::ReturnOp, fn.line);
  }

  // -- statements ------------------------------------------------------------

  struct LoopCtx {
    uint32_t depth;   ///< scope_depth_ just inside the loop's own scope
    int loop_id;      ///< for the LoopExit records a return unwinds through
    std::vector<uint32_t> break_jumps;
    std::vector<uint32_t> continue_jumps;
  };

  void unwind_to(uint32_t target_depth, int line) {
    FORAY_CHECK(scope_depth_ >= target_depth, "scope underflow");
    const uint32_t n = scope_depth_ - target_depth;
    if (n > 0) {
      Insn& in = emit(Op::RestoreSpN, line);
      in.a = n;
    }
  }

  void compile_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Expr:
        if (s.expr) {
          compile_expr(*s.expr);
          emit(Op::PopV, s.line);
        }
        return;
      case StmtKind::Decl:
        for (const VarDecl& d : s.decls) {
          const int32_t slot =
              res_.decl_slot[static_cast<size_t>(d.node_id)];
          FORAY_CHECK(slot >= 0, "declaration without a resolved slot");
          local_meta_[static_cast<size_t>(slot)] =
              SlotMeta{d.type, d.array_len >= 0, true};
          const uint32_t elem = static_cast<uint32_t>(d.type.size());
          Insn& in = emit(Op::DeclLocal, d.line);
          in.a = static_cast<uint32_t>(slot);
          in.b = d.array_len >= 0 ? elem * static_cast<uint32_t>(d.array_len)
                                  : elem;
          in.flags = static_cast<uint8_t>(elem_align(elem));
          compile_initializers(d, /*global_slot=*/-1, slot);
        }
        return;
      case StmtKind::If: {
        compile_expr(*s.cond);
        const uint32_t jf = here();
        emit(Op::JumpIfFalse, s.line);
        compile_stmt(*s.then_branch);
        if (s.else_branch) {
          const uint32_t jend = here();
          emit(Op::Jump, s.line);
          patch(jf, here());
          compile_stmt(*s.else_branch);
          patch(jend, here());
        } else {
          patch(jf, here());
        }
        return;
      }
      case StmtKind::While:
      case StmtKind::DoWhile:
      case StmtKind::For:
        compile_loop(s);
        return;
      case StmtKind::Block: {
        emit(Op::SaveSp, s.line);
        ++scope_depth_;
        for (const auto& st : s.stmts) compile_stmt(*st);
        --scope_depth_;
        emit(Op::RestoreSp, s.line);
        return;
      }
      case StmtKind::Return:
        if (s.expr) {
          compile_expr(*s.expr);
          emit(Op::RetValue, s.line);
        }
        // Returning unwinds every enclosing loop; each emits its
        // LoopExit checkpoint innermost-first, as exec_loop does when
        // Flow::Return propagates outward.
        for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
          checkpoint(CheckpointType::LoopExit, it->loop_id, s.line);
        }
        emit(Op::ReturnOp, s.line);
        return;
      case StmtKind::Break:
        // Sema rejects break/continue outside loops.
        FORAY_CHECK(!loops_.empty(), "break outside a loop");
        unwind_to(loops_.back().depth, s.line);
        loops_.back().break_jumps.push_back(here());
        emit(Op::Jump, s.line);
        return;
      case StmtKind::Continue:
        FORAY_CHECK(!loops_.empty(), "continue outside a loop");
        unwind_to(loops_.back().depth, s.line);
        loops_.back().continue_jumps.push_back(here());
        emit(Op::Jump, s.line);
        return;
      case StmtKind::Empty:
        return;
    }
    FORAY_CHECK(false, "unreachable statement kind");
  }

  void checkpoint(CheckpointType t, int loop_id, int line) {
    if (loop_id < 0) return;  // unannotated loops never emit checkpoints
    Insn& in = emit(Op::CheckpointOp, line);
    in.flags = static_cast<uint8_t>(t);
    in.a = static_cast<uint32_t>(loop_id);
  }

  /// Lowers the three loop forms with the exact record order of the
  /// tree walker's exec_loop(): the condition of iteration N+1 always
  /// evaluates between BodyEnd(N) and BodyBegin(N+1); for-steps run
  /// after BodyEnd; break exits run the LoopExit checkpoint.
  void compile_loop(const Stmt& s) {
    emit(Op::SaveSp, s.line);
    ++scope_depth_;
    loops_.push_back(LoopCtx{scope_depth_, s.loop_id, {}, {}});
    checkpoint(CheckpointType::LoopEnter, s.loop_id, s.line);

    if (s.kind == StmtKind::For && s.init) compile_stmt(*s.init);

    uint32_t cond_jump = 0;
    bool has_cond_jump = false;
    uint32_t top;
    if (s.kind == StmtKind::DoWhile) {
      top = here();  // body first; the condition joins the back edge
    } else {
      top = here();
      if (s.cond) {
        compile_expr(*s.cond);
        cond_jump = here();
        emit(Op::JumpIfFalse, s.line);
        has_cond_jump = true;
      }
    }

    checkpoint(CheckpointType::BodyBegin, s.loop_id, s.line);
    compile_stmt(*s.body);

    const uint32_t body_end = here();
    checkpoint(CheckpointType::BodyEnd, s.loop_id, s.line);
    if (s.kind == StmtKind::For && s.step) {
      compile_expr(*s.step);
      emit(Op::PopV, s.line);
    }
    if (s.kind == StmtKind::DoWhile) {
      compile_expr(*s.cond);
      Insn& jt = emit(Op::JumpIfTrue, s.line);
      jt.a = top;
    } else {
      Insn& j = emit(Op::Jump, s.line);
      j.a = top;
    }

    const uint32_t exit_pc = here();
    checkpoint(CheckpointType::LoopExit, s.loop_id, s.line);
    --scope_depth_;
    emit(Op::RestoreSp, s.line);

    LoopCtx ctx = std::move(loops_.back());
    loops_.pop_back();
    if (has_cond_jump) patch(cond_jump, exit_pc);
    for (uint32_t at : ctx.break_jumps) patch(at, exit_pc);
    for (uint32_t at : ctx.continue_jumps) patch(at, body_end);
  }

  // -- expressions -----------------------------------------------------------

  struct SlotMeta {
    Type type;
    bool is_array = false;
    bool known = false;
  };

  const SlotMeta& meta_for(const VarResolution::Binding& b) const {
    const SlotMeta& m = b.global
                            ? global_meta_[static_cast<size_t>(b.index)]
                            : local_meta_[static_cast<size_t>(b.index)];
    FORAY_CHECK(m.known, "use of a slot before its declaration compiled");
    return m;
  }

  void compile_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        Insn& in = emit(Op::PushInt, e.line);
        in.a = pool_int(e.int_val);
        return;
      }
      case ExprKind::FloatLit: {
        Insn& in = emit(Op::PushFloat, e.line);
        in.a = pool_float(e.float_val);
        return;
      }
      case ExprKind::StrLit: {
        Insn& in = emit(Op::PushStr, e.line);
        in.a = pool_str(e.str_val);
        return;
      }
      case ExprKind::Ident: {
        const VarResolution::Binding& b =
            res_.ident[static_cast<size_t>(e.node_id)];
        if (!b.resolved) {
          Insn& in = emit(Op::ThrowUnbound, e.line);
          in.a = pool_name(e.name);
          return;
        }
        const SlotMeta& m = meta_for(b);
        if (m.is_array) {
          Insn& in = emit(b.global ? Op::PushGlobalPtr : Op::PushLocalPtr,
                          e.line);
          in.a = static_cast<uint32_t>(b.index);
          in.c = pool_name(e.name);
          set_type(in, m.type);
        } else {
          Insn& in = emit(b.global ? Op::LoadGlobal : Op::LoadLocal, e.line);
          in.a = static_cast<uint32_t>(b.index);
          in.b = minic::instr_addr_for_node(e.node_id);
          in.c = pool_name(e.name);
          set_type(in, m.type);
        }
        return;
      }
      case ExprKind::Unary:
        compile_unary(e);
        return;
      case ExprKind::Binary:
        compile_binary(e);
        return;
      case ExprKind::Assign:
        compile_assign(e);
        return;
      case ExprKind::Cond: {
        compile_expr(*e.a);
        const uint32_t jf = here();
        emit(Op::JumpIfFalse, e.line);
        compile_expr(*e.b);
        Insn& cv1 = emit(Op::ConvertOp, e.line);
        set_type(cv1, e.type);
        const uint32_t jend = here();
        emit(Op::Jump, e.line);
        patch(jf, here());
        compile_expr(*e.c);
        Insn& cv2 = emit(Op::ConvertOp, e.line);
        set_type(cv2, e.type);
        patch(jend, here());
        return;
      }
      case ExprKind::Call:
        compile_call(e);
        return;
      case ExprKind::Index: {
        compile_expr(*e.a);
        compile_expr(*e.b);
        Insn& in = emit(Op::IndexLoad, e.line);
        in.a = static_cast<uint32_t>(e.type.size());
        in.b = minic::instr_addr_for_node(e.node_id);
        in.flags = static_cast<uint8_t>(AccessKind::Data);
        set_type(in, e.type);
        return;
      }
      case ExprKind::Cast: {
        compile_expr(*e.a);
        Insn& in = emit(Op::ConvertOp, e.line);
        set_type(in, e.cast_type);
        return;
      }
    }
    FORAY_CHECK(false, "unreachable expression kind");
  }

  /// Emits ops leaving the lvalue's address on the value stack and
  /// returns its static facts. Mirrors the tree walker's lvalue().
  LvalueInfo compile_lvalue_addr(const Expr& e) {
    LvalueInfo lv;
    lv.instr = minic::instr_addr_for_node(e.node_id);
    switch (e.kind) {
      case ExprKind::Ident: {
        const VarResolution::Binding& b =
            res_.ident[static_cast<size_t>(e.node_id)];
        if (!b.resolved) {
          Insn& in = emit(Op::ThrowUnbound, e.line);
          in.a = pool_name(e.name);
          lv.type = e.type;
          lv.kind = AccessKind::Scalar;
          return lv;
        }
        const SlotMeta& m = meta_for(b);
        FORAY_CHECK(!m.is_array, "array is not an lvalue");
        Insn& in = emit(b.global ? Op::PushGlobalPtr : Op::PushLocalPtr,
                        e.line);
        in.a = static_cast<uint32_t>(b.index);
        in.c = pool_name(e.name);
        set_type(in, m.type);
        lv.type = m.type;
        lv.kind = AccessKind::Scalar;
        return lv;
      }
      case ExprKind::Unary:
        FORAY_CHECK(e.un_op == UnaryOp::Deref, "not an lvalue unary");
        compile_expr(*e.a);
        lv.type = e.type;
        lv.kind = AccessKind::Data;
        return lv;
      case ExprKind::Index: {
        compile_expr(*e.a);
        compile_expr(*e.b);
        Insn& in = emit(Op::IndexAddr, e.line);
        in.a = static_cast<uint32_t>(e.type.size());
        lv.type = e.type;
        lv.kind = AccessKind::Data;
        return lv;
      }
      default:
        FORAY_CHECK(false, "expression is not an lvalue");
    }
    return lv;  // unreachable
  }

  void compile_unary(const Expr& e) {
    switch (e.un_op) {
      case UnaryOp::Neg:
        compile_expr(*e.a);
        emit(Op::Neg, e.line);
        return;
      case UnaryOp::Not:
        compile_expr(*e.a);
        emit(Op::NotOp, e.line);
        return;
      case UnaryOp::BitNot:
        compile_expr(*e.a);
        emit(Op::BitNotOp, e.line);
        return;
      case UnaryOp::Deref: {
        compile_expr(*e.a);
        Insn& in = emit(Op::LoadMem, e.line);
        in.b = minic::instr_addr_for_node(e.node_id);
        in.flags = static_cast<uint8_t>(AccessKind::Data);
        set_type(in, e.type);
        return;
      }
      case UnaryOp::AddrOf: {
        // &x pushes a pointer typed by the designated object; no access
        // is emitted (the tree walker forms the Lvalue without loading).
        const Expr& a = *e.a;
        if (a.kind == ExprKind::Ident) {
          compile_lvalue_addr(a);  // PushPtr already carries the type
          return;
        }
        LvalueInfo lv = compile_lvalue_addr(a);
        Insn& in = emit(Op::CastToPtr, e.line);
        set_type(in, lv.type);
        return;
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec: {
        const bool inc =
            e.un_op == UnaryOp::PreInc || e.un_op == UnaryOp::PostInc;
        const bool post =
            e.un_op == UnaryOp::PostInc || e.un_op == UnaryOp::PostDec;
        // i++ / --p on a resolved scalar variable is the single hottest
        // statement form (every loop step); fuse the address push and
        // the update into one op. The handler recomputes the pointer
        // stride from the static type, so only post/dec bits travel.
        if (e.a->kind == ExprKind::Ident) {
          const VarResolution::Binding& b =
              res_.ident[static_cast<size_t>(e.a->node_id)];
          if (b.resolved && !meta_for(b).is_array) {
            const SlotMeta& m = meta_for(b);
            Insn& in = emit(b.global ? Op::IncDecGlobal : Op::IncDecLocal,
                            e.line);
            in.a = static_cast<uint32_t>(b.index);
            in.b = minic::instr_addr_for_node(e.a->node_id);
            in.c = pool_name(e.a->name);
            in.flags = static_cast<uint8_t>(AccessKind::Scalar) |
                       static_cast<uint8_t>(post ? 0x04 : 0x00) |
                       static_cast<uint8_t>(inc ? 0x00 : 0x08);
            set_type(in, m.type);
            return;
          }
        }
        LvalueInfo lv = compile_lvalue_addr(*e.a);
        int64_t delta = 1;
        if (lv.type.is_pointer()) delta = lv.type.deref().size();
        Insn& in = emit(Op::IncDec, e.line);
        in.a = static_cast<uint32_t>(
            static_cast<int32_t>(inc ? delta : -delta));
        in.b = lv.instr;
        in.flags = static_cast<uint8_t>(lv.kind) |
                   static_cast<uint8_t>(post ? 0x04 : 0x00);
        set_type(in, lv.type);
        return;
      }
    }
    FORAY_CHECK(false, "unreachable unary op");
  }

  void compile_binary(const Expr& e) {
    if (e.bin_op == BinaryOp::LogAnd) {
      compile_expr(*e.a);
      const uint32_t jf = here();
      emit(Op::JumpIfFalse, e.line);
      compile_expr(*e.b);
      emit(Op::Truthy, e.line);
      const uint32_t jend = here();
      emit(Op::Jump, e.line);
      patch(jf, here());
      Insn& zero = emit(Op::PushInt, e.line);
      zero.a = pool_int(0);
      patch(jend, here());
      return;
    }
    if (e.bin_op == BinaryOp::LogOr) {
      compile_expr(*e.a);
      const uint32_t jt = here();
      emit(Op::JumpIfTrue, e.line);
      compile_expr(*e.b);
      emit(Op::Truthy, e.line);
      const uint32_t jend = here();
      emit(Op::Jump, e.line);
      patch(jt, here());
      Insn& one = emit(Op::PushInt, e.line);
      one.a = pool_int(1);
      patch(jend, here());
      return;
    }
    compile_expr(*e.a);
    compile_expr(*e.b);
    Insn& in = emit(Op::Binary, e.line);
    in.flags = static_cast<uint8_t>(e.bin_op);
    set_type(in, e.type);
  }

  void compile_assign(const Expr& e) {
    if (e.as_op == AssignOp::Assign) {
      // Simple assignment: address ops first (lvalue before rhs, as in
      // eval_assign), value second. The Index form fuses the address
      // computation into the store, which emits nothing by itself.
      if (e.a->kind == ExprKind::Index) {
        compile_expr(*e.a->a);
        compile_expr(*e.a->b);
        compile_expr(*e.b);
        Insn& in = emit(Op::IndexStore, e.line);
        in.a = static_cast<uint32_t>(e.a->type.size());
        in.b = minic::instr_addr_for_node(e.a->node_id);
        in.flags = static_cast<uint8_t>(AccessKind::Data);
        set_type(in, e.a->type);
        return;
      }
      LvalueInfo lv = compile_lvalue_addr(*e.a);
      compile_expr(*e.b);
      Insn& in = emit(Op::StoreMem, e.line);
      in.b = lv.instr;
      in.flags = static_cast<uint8_t>(lv.kind);
      set_type(in, lv.type);
      return;
    }
    BinaryOp op;
    switch (e.as_op) {
      case AssignOp::AddA: op = BinaryOp::Add; break;
      case AssignOp::SubA: op = BinaryOp::Sub; break;
      case AssignOp::MulA: op = BinaryOp::Mul; break;
      case AssignOp::DivA: op = BinaryOp::Div; break;
      case AssignOp::ModA: op = BinaryOp::Mod; break;
      case AssignOp::ShlA: op = BinaryOp::Shl; break;
      case AssignOp::ShrA: op = BinaryOp::Shr; break;
      case AssignOp::AndA: op = BinaryOp::BitAnd; break;
      case AssignOp::OrA: op = BinaryOp::BitOr; break;
      case AssignOp::XorA: op = BinaryOp::BitXor; break;
      default:
        FORAY_CHECK(false, "unreachable assign op");
        return;
    }
    LvalueInfo lv = compile_lvalue_addr(*e.a);
    Insn& ld = emit(Op::CompoundLoad, e.line);
    ld.b = lv.instr;
    ld.flags = static_cast<uint8_t>(lv.kind);
    set_type(ld, lv.type);
    compile_expr(*e.b);
    Insn& st = emit(Op::StoreBin, e.line);
    st.b = lv.instr;
    st.flags = static_cast<uint8_t>(lv.kind) |
               static_cast<uint8_t>(static_cast<uint8_t>(op) << 2);
    set_type(st, lv.type);
  }

  void compile_call(const Expr& e) {
    for (const auto& a : e.args) compile_expr(*a);
    // Intrinsics shadow user functions, matching eval_call's dispatch.
    if (auto intr = minic::find_intrinsic(e.name)) {
      Insn& in = emit(Op::CallIntr, e.line);
      in.a = static_cast<uint32_t>(intr->id);
      in.b = minic::instr_addr_for_node(e.node_id);
      in.flags = static_cast<uint8_t>(e.args.size());
      return;
    }
    auto it = func_index_.find(e.name);
    FORAY_CHECK(it != func_index_.end(), "sema guarantees function exists");
    Insn& in = emit(Op::CallFn, e.line);
    in.a = it->second;
  }

  const Program& prog_;
  VarResolution res_;
  CompiledProgram out_;
  std::unordered_map<std::string, uint32_t> func_index_;
  std::unordered_map<int64_t, uint32_t> int_index_;
  std::unordered_map<std::string, uint32_t> str_index_;
  std::unordered_map<std::string, uint32_t> name_index_;
  std::vector<SlotMeta> global_meta_;
  std::vector<SlotMeta> local_meta_;
  std::vector<LoopCtx> loops_;
  uint32_t scope_depth_ = 0;
};

}  // namespace

CompiledProgram compile_program(const minic::Program& prog) {
  return Compiler(prog).run();
}

}  // namespace foray::sim
