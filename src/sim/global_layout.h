// The single copy of the engines' global-allocation rule.
//
// Globals allocate strictly in declaration order, each aligned to
// min(element size, 4) bytes. The tree walker (interp_impl.h
// alloc_globals), the bytecode compiler (bytecode.cpp compile_start) and
// the replay address map (classify_sink.h global_regions) all size and
// align global storage through this one function, so the rule cannot
// drift between them; tests/transform_replay_test additionally locks the
// computed map against real trace addresses from both engines.
#pragma once

#include <cstdint>

#include "minic/ast.h"

namespace foray::sim {

struct GlobalShape {
  uint32_t bytes = 0;
  uint32_t align = 0;
};

inline GlobalShape global_shape(const minic::VarDecl& d) {
  const uint32_t elem = static_cast<uint32_t>(d.type.size());
  const uint32_t bytes =
      d.array_len >= 0 ? elem * static_cast<uint32_t>(d.array_len) : elem;
  return GlobalShape{bytes, elem >= 4 ? 4u : elem};
}

}  // namespace foray::sim
