#include "sim/memory.h"

#include <cstring>

#include "util/strings.h"

namespace foray::sim {

namespace {
uint32_t align_up(uint32_t v, uint32_t align) {
  return (v + align - 1) & ~(align - 1);
}
}  // namespace

Memory::Memory(uint32_t heap_capacity, uint32_t stack_capacity)
    : heap_capacity_(heap_capacity), stack_capacity_(stack_capacity) {}

uint32_t Memory::alloc_global(uint32_t size, uint32_t align) {
  uint32_t offset = align_up(static_cast<uint32_t>(globals_.size()), align);
  globals_.resize(offset + size, 0);
  return kGlobalBase + offset;
}

uint32_t Memory::alloc_rodata(const std::string& bytes) {
  uint32_t offset = static_cast<uint32_t>(rodata_.size());
  rodata_.insert(rodata_.end(), bytes.begin(), bytes.end());
  rodata_.push_back(0);  // NUL terminator
  // Keep subsequent blobs aligned for safe word access.
  rodata_.resize(align_up(static_cast<uint32_t>(rodata_.size()), 4), 0);
  return kRodataBase + offset;
}

uint32_t Memory::heap_alloc(uint32_t size) {
  uint32_t offset = align_up(heap_brk_, 8);
  if (size > heap_capacity_ || offset > heap_capacity_ - size) {
    throw RuntimeError("simulated heap exhausted (malloc of " +
                           std::to_string(size) + " bytes)",
                       util::ErrorCode::kResourceExhausted);
  }
  heap_brk_ = offset + size;
  if (heap_.size() < heap_brk_) heap_.resize(heap_brk_, 0);
  return kHeapBase + offset;
}

void Memory::set_sp(uint32_t sp) {
  if (sp > kStackTop || kStackTop - sp > stack_capacity_) {
    throw RuntimeError("simulated stack overflow",
                       util::ErrorCode::kResourceExhausted);
  }
  sp_ = sp;
}

uint32_t Memory::stack_alloc(uint32_t size, uint32_t align) {
  uint32_t new_sp = sp_ - size;
  new_sp &= ~(align - 1);
  set_sp(new_sp);
  return new_sp;
}

uint8_t* Memory::resolve_fault(uint32_t addr, uint32_t size) const {
  throw RuntimeError("access to unmapped address 0x" + util::to_hex(addr) +
                     " (" + std::to_string(size) + " bytes)");
}

uint64_t Memory::mapped_bytes() const {
  return rodata_.size() + globals_.size() + heap_.size() +
         stack_full_.size();
}

uint64_t Memory::digest() const {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  };
  auto mix_u32 = [&](uint32_t v) {
    uint8_t b[4];
    std::memcpy(b, &v, 4);
    mix(b, 4);
  };
  auto mix_region = [&](const std::vector<uint8_t>& r) {
    mix_u32(static_cast<uint32_t>(r.size()));
    mix(r.data(), r.size());
  };
  mix_region(rodata_);
  mix_region(globals_);
  mix_region(heap_);
  mix_region(stack_full_);
  mix_u32(heap_brk_);
  mix_u32(sp_);
  return h;
}

}  // namespace foray::sim
