#include "sim/memory.h"

#include <cstring>

#include "util/strings.h"

namespace foray::sim {

namespace {
uint32_t align_up(uint32_t v, uint32_t align) {
  return (v + align - 1) & ~(align - 1);
}
}  // namespace

Memory::Memory(uint32_t heap_capacity, uint32_t stack_capacity)
    : heap_capacity_(heap_capacity), stack_capacity_(stack_capacity) {}

uint32_t Memory::alloc_global(uint32_t size, uint32_t align) {
  uint32_t offset = align_up(static_cast<uint32_t>(globals_.size()), align);
  globals_.resize(offset + size, 0);
  return kGlobalBase + offset;
}

uint32_t Memory::alloc_rodata(const std::string& bytes) {
  uint32_t offset = static_cast<uint32_t>(rodata_.size());
  rodata_.insert(rodata_.end(), bytes.begin(), bytes.end());
  rodata_.push_back(0);  // NUL terminator
  // Keep subsequent blobs aligned for safe word access.
  rodata_.resize(align_up(static_cast<uint32_t>(rodata_.size()), 4), 0);
  return kRodataBase + offset;
}

uint32_t Memory::heap_alloc(uint32_t size) {
  uint32_t offset = align_up(heap_brk_, 8);
  if (size > heap_capacity_ || offset > heap_capacity_ - size) {
    throw RuntimeError("simulated heap exhausted (malloc of " +
                       std::to_string(size) + " bytes)");
  }
  heap_brk_ = offset + size;
  if (heap_.size() < heap_brk_) heap_.resize(heap_brk_, 0);
  return kHeapBase + offset;
}

void Memory::set_sp(uint32_t sp) {
  if (sp > kStackTop || kStackTop - sp > stack_capacity_) {
    throw RuntimeError("simulated stack overflow");
  }
  sp_ = sp;
}

uint32_t Memory::stack_alloc(uint32_t size, uint32_t align) {
  uint32_t new_sp = sp_ - size;
  new_sp &= ~(align - 1);
  set_sp(new_sp);
  return new_sp;
}

uint8_t* Memory::resolve(uint32_t addr, uint32_t size) {
  if (addr >= kStackTop - stack_capacity_ && addr + size <= kStackTop) {
    // Stack bytes are stored top-down: address a maps to
    // stack_[kStackTop-1-a] ... to keep them contiguous we instead view
    // the stack as a bottom-up array anchored at (kStackTop - capacity).
    uint32_t base = kStackTop - stack_capacity_;
    uint32_t off = addr - base;
    if (stack_full_.size() < stack_capacity_) {
      stack_full_.resize(stack_capacity_, 0);
    }
    return stack_full_.data() + off;
  }
  if (addr >= kRodataBase && addr + size <= kRodataBase + rodata_.size()) {
    return rodata_.data() + (addr - kRodataBase);
  }
  if (addr >= kGlobalBase && addr + size <= kGlobalBase + globals_.size()) {
    return globals_.data() + (addr - kGlobalBase);
  }
  if (addr >= kHeapBase && addr + size <= kHeapBase + heap_brk_) {
    return heap_.data() + (addr - kHeapBase);
  }
  throw RuntimeError("access to unmapped address 0x" + util::to_hex(addr) +
                     " (" + std::to_string(size) + " bytes)");
}

int64_t Memory::load_int(uint32_t addr, uint32_t size) {
  uint8_t* p = resolve(addr, size);
  switch (size) {
    case 1: {
      int8_t v;
      std::memcpy(&v, p, 1);
      return v;
    }
    case 2: {
      int16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case 4: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    default:
      throw RuntimeError("unsupported load width " + std::to_string(size));
  }
}

void Memory::store_int(uint32_t addr, uint32_t size, int64_t value) {
  uint8_t* p = resolve(addr, size);
  switch (size) {
    case 1: {
      int8_t v = static_cast<int8_t>(value);
      std::memcpy(p, &v, 1);
      break;
    }
    case 2: {
      int16_t v = static_cast<int16_t>(value);
      std::memcpy(p, &v, 2);
      break;
    }
    case 4: {
      int32_t v = static_cast<int32_t>(value);
      std::memcpy(p, &v, 4);
      break;
    }
    default:
      throw RuntimeError("unsupported store width " + std::to_string(size));
  }
}

double Memory::load_float(uint32_t addr) {
  uint8_t* p = resolve(addr, 4);
  float v;
  std::memcpy(&v, p, 4);
  return static_cast<double>(v);
}

void Memory::store_float(uint32_t addr, double value) {
  uint8_t* p = resolve(addr, 4);
  float v = static_cast<float>(value);
  std::memcpy(p, &v, 4);
}

uint8_t Memory::load_byte(uint32_t addr) { return *resolve(addr, 1); }

void Memory::store_byte(uint32_t addr, uint8_t value) {
  *resolve(addr, 1) = value;
}

uint64_t Memory::mapped_bytes() const {
  return rodata_.size() + globals_.size() + heap_.size() +
         stack_full_.size();
}

}  // namespace foray::sim
