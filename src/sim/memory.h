// Simulated 32-bit address space.
//
// Mirrors the memory map a SimpleScalar-profiled binary would see, so the
// addresses appearing in traces look like the paper's (globals in low
// memory, stack near 0x7fffffff):
//
//   rodata   0x08000000+   string literals
//   globals  0x10000000+   global variables
//   heap     0x20000000+   malloc arena (bump allocator)
//   stack    ..0x7fffff00  grows downward
//
// All loads/stores are bounds- and alignment-tolerant (byte-addressed);
// touching unmapped memory raises RuntimeError, which the interpreter
// converts into a failed run.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/inline.h"
#include "util/status.h"

namespace foray::sim {

/// Raised for simulated-program faults (OOB access, overflow, bad free).
/// Carries the failure class the fault maps to: a wild pointer is the
/// program's fault (kInvalidInput, the default), a tripped budget is
/// kResourceExhausted / kDeadlineExceeded / kCancelled. execute_guarded
/// preserves the code on the resulting Status.
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(
      const std::string& what,
      util::ErrorCode code = util::ErrorCode::kInvalidInput)
      : std::runtime_error(what), code_(code) {}
  util::ErrorCode code() const { return code_; }

 private:
  util::ErrorCode code_;
};

class Memory {
 public:
  static constexpr uint32_t kRodataBase = 0x08000000;
  static constexpr uint32_t kGlobalBase = 0x10000000;
  static constexpr uint32_t kHeapBase = 0x20000000;
  static constexpr uint32_t kStackTop = 0x7fffff00;

  explicit Memory(uint32_t heap_capacity = 1u << 24,
                  uint32_t stack_capacity = 1u << 22);

  // -- allocation -----------------------------------------------------------

  /// Allocate zero-initialized global storage; returns its address.
  uint32_t alloc_global(uint32_t size, uint32_t align = 4);

  /// Intern a read-only blob (string literal, incl. NUL); returns address.
  uint32_t alloc_rodata(const std::string& bytes);

  /// Bump-allocate from the heap (malloc). 8-byte aligned.
  uint32_t heap_alloc(uint32_t size);

  // -- stack ----------------------------------------------------------------

  uint32_t sp() const { return sp_; }
  void set_sp(uint32_t sp);
  /// Allocate `size` bytes below the current stack pointer.
  uint32_t stack_alloc(uint32_t size, uint32_t align = 4);

  // -- typed access ---------------------------------------------------------
  //
  // The loads/stores below run once per simulated memory operation —
  // tens of millions of times per profiling run — so they live in the
  // header and are forced inline into both engines' hot loops; an
  // out-of-line call here is directly visible in Mrec/s.

  /// Load a `size`-byte integer (1, 2 or 4), sign-extending.
  FORAY_ALWAYS_INLINE int64_t load_int(uint32_t addr, uint32_t size) {
    const uint8_t* p = resolve(addr, size);
    switch (size) {
      case 1: {
        int8_t v;
        std::memcpy(&v, p, 1);
        return v;
      }
      case 2: {
        int16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case 4: {
        int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      default:
        throw RuntimeError("unsupported load width " + std::to_string(size));
    }
  }

  FORAY_ALWAYS_INLINE void store_int(uint32_t addr, uint32_t size,
                                     int64_t value) {
    uint8_t* p = resolve(addr, size);
    switch (size) {
      case 1: {
        const int8_t v = static_cast<int8_t>(value);
        std::memcpy(p, &v, 1);
        break;
      }
      case 2: {
        const int16_t v = static_cast<int16_t>(value);
        std::memcpy(p, &v, 2);
        break;
      }
      case 4: {
        const int32_t v = static_cast<int32_t>(value);
        std::memcpy(p, &v, 4);
        break;
      }
      default:
        throw RuntimeError("unsupported store width " + std::to_string(size));
    }
  }

  FORAY_ALWAYS_INLINE double load_float(uint32_t addr) {
    const uint8_t* p = resolve(addr, 4);
    float v;
    std::memcpy(&v, p, 4);
    return static_cast<double>(v);
  }

  FORAY_ALWAYS_INLINE void store_float(uint32_t addr, double value) {
    uint8_t* p = resolve(addr, 4);
    const float v = static_cast<float>(value);
    std::memcpy(p, &v, 4);
  }

  FORAY_ALWAYS_INLINE uint8_t load_byte(uint32_t addr) {
    return *resolve(addr, 1);
  }

  FORAY_ALWAYS_INLINE void store_byte(uint32_t addr, uint8_t value) {
    *resolve(addr, 1) = value;
  }

  /// Total bytes currently mapped (for footprint/limit reporting).
  uint64_t mapped_bytes() const;

  /// FNV-1a hash over every mapped region plus the allocator state
  /// (sp, heap break). Two runs that leave the simulated machine in the
  /// same state digest identically; the engine-equivalence harness uses
  /// this to compare final memory images without exposing the regions.
  uint64_t digest() const;

 private:
  /// Maps a simulated address range to host memory. Checked in the
  /// layout's hot order; lazily sizes the stack backing store on first
  /// touch. Throws RuntimeError for unmapped ranges. Range ends are
  /// computed in 64 bits: a simulated address near 2^32 must fault,
  /// not wrap past a region check into host memory.
  FORAY_ALWAYS_INLINE uint8_t* resolve(uint32_t addr, uint32_t size) {
    const uint64_t end = static_cast<uint64_t>(addr) + size;
    if (addr >= kStackTop - stack_capacity_ && end <= kStackTop) {
      // Stack bytes are viewed as a bottom-up array anchored at
      // (kStackTop - capacity) to keep them contiguous.
      const uint32_t base = kStackTop - stack_capacity_;
      const uint32_t off = addr - base;
      if (stack_full_.size() < stack_capacity_) {
        stack_full_.resize(stack_capacity_, 0);
      }
      return stack_full_.data() + off;
    }
    if (addr >= kRodataBase && end <= kRodataBase + rodata_.size()) {
      return rodata_.data() + (addr - kRodataBase);
    }
    if (addr >= kGlobalBase && end <= kGlobalBase + globals_.size()) {
      return globals_.data() + (addr - kGlobalBase);
    }
    if (addr >= kHeapBase && end <= kHeapBase + heap_brk_) {
      return heap_.data() + (addr - kHeapBase);
    }
    return resolve_fault(addr, size);
  }

  [[noreturn]] uint8_t* resolve_fault(uint32_t addr, uint32_t size) const;

  std::vector<uint8_t> rodata_;
  std::vector<uint8_t> globals_;
  std::vector<uint8_t> heap_;
  /// Backing store for [kStackTop - capacity, kStackTop); sized lazily on
  /// first touch.
  std::vector<uint8_t> stack_full_;
  uint32_t heap_brk_ = 0;  ///< bytes of heap handed out
  uint32_t heap_capacity_;
  uint32_t stack_capacity_;
  uint32_t sp_ = kStackTop;
};

}  // namespace foray::sim
