// Simulated 32-bit address space.
//
// Mirrors the memory map a SimpleScalar-profiled binary would see, so the
// addresses appearing in traces look like the paper's (globals in low
// memory, stack near 0x7fffffff):
//
//   rodata   0x08000000+   string literals
//   globals  0x10000000+   global variables
//   heap     0x20000000+   malloc arena (bump allocator)
//   stack    ..0x7fffff00  grows downward
//
// All loads/stores are bounds- and alignment-tolerant (byte-addressed);
// touching unmapped memory raises RuntimeError, which the interpreter
// converts into a failed run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace foray::sim {

/// Raised for simulated-program faults (OOB access, overflow, bad free).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Memory {
 public:
  static constexpr uint32_t kRodataBase = 0x08000000;
  static constexpr uint32_t kGlobalBase = 0x10000000;
  static constexpr uint32_t kHeapBase = 0x20000000;
  static constexpr uint32_t kStackTop = 0x7fffff00;

  explicit Memory(uint32_t heap_capacity = 1u << 24,
                  uint32_t stack_capacity = 1u << 22);

  // -- allocation -----------------------------------------------------------

  /// Allocate zero-initialized global storage; returns its address.
  uint32_t alloc_global(uint32_t size, uint32_t align = 4);

  /// Intern a read-only blob (string literal, incl. NUL); returns address.
  uint32_t alloc_rodata(const std::string& bytes);

  /// Bump-allocate from the heap (malloc). 8-byte aligned.
  uint32_t heap_alloc(uint32_t size);

  // -- stack ----------------------------------------------------------------

  uint32_t sp() const { return sp_; }
  void set_sp(uint32_t sp);
  /// Allocate `size` bytes below the current stack pointer.
  uint32_t stack_alloc(uint32_t size, uint32_t align = 4);

  // -- typed access ---------------------------------------------------------

  /// Load a `size`-byte integer (1, 2 or 4), sign-extending.
  int64_t load_int(uint32_t addr, uint32_t size);
  void store_int(uint32_t addr, uint32_t size, int64_t value);
  double load_float(uint32_t addr);
  void store_float(uint32_t addr, double value);

  uint8_t load_byte(uint32_t addr);
  void store_byte(uint32_t addr, uint8_t value);

  /// Total bytes currently mapped (for footprint/limit reporting).
  uint64_t mapped_bytes() const;

 private:
  uint8_t* resolve(uint32_t addr, uint32_t size);

  std::vector<uint8_t> rodata_;
  std::vector<uint8_t> globals_;
  std::vector<uint8_t> heap_;
  /// Backing store for [kStackTop - capacity, kStackTop); sized lazily on
  /// first touch.
  std::vector<uint8_t> stack_full_;
  uint32_t heap_brk_ = 0;  ///< bytes of heap handed out
  uint32_t heap_capacity_;
  uint32_t stack_capacity_;
  uint32_t sp_ = kStackTop;
};

}  // namespace foray::sim
