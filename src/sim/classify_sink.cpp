#include "sim/classify_sink.h"

#include <algorithm>

#include "sim/global_layout.h"
#include "sim/memory.h"
#include "util/status.h"

namespace foray::sim {

namespace {

uint32_t align_up(uint32_t v, uint32_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

std::vector<GlobalRegion> global_regions(const minic::Program& prog) {
  std::vector<GlobalRegion> out;
  out.reserve(prog.globals.size());
  uint32_t offset = 0;
  for (const minic::VarDecl& d : prog.globals) {
    const GlobalShape shape = global_shape(d);
    FORAY_CHECK(shape.align > 0, "global with zero-sized element type");
    offset = align_up(offset, shape.align);
    out.push_back(
        GlobalRegion{d.name, Memory::kGlobalBase + offset, shape.bytes});
    offset += shape.bytes;
  }
  return out;
}

ClassifyingSink::ClassifyingSink(std::vector<Region> regions, int num_buffers)
    : regions_(std::move(regions)),
      buffers_(static_cast<size_t>(std::max(num_buffers, 0))) {
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });
  for (size_t i = 1; i < regions_.size(); ++i) {
    FORAY_CHECK(regions_[i - 1].base + regions_[i - 1].size <=
                    regions_[i].base,
                "ClassifyingSink: overlapping regions");
  }
  for (const Region& r : regions_) {
    FORAY_CHECK(r.buffer < num_buffers, "ClassifyingSink: buffer id range");
  }
}

ClassifyingSink::Tally* ClassifyingSink::tally_in(Frame* f, int buffer) {
  for (Tally& t : f->tallies) {
    if (t.buffer == buffer) return &t;
  }
  f->tallies.push_back(Tally{buffer, 0, 0, 0, 0});
  return &f->tallies.back();
}

void ClassifyingSink::on_record(const trace::Record& r) {
  switch (r.type()) {
    case trace::RecordType::Checkpoint:
      switch (r.cp()) {
        case trace::CheckpointType::LoopEnter:
          stack_.push_back(Frame{r.loop_id(), {}});
          break;
        case trace::CheckpointType::LoopExit:
          // Unwinding (break / return) can exit several loops with one
          // record each; pop down to the matching frame.
          while (!stack_.empty()) {
            const bool match = stack_.back().loop_id == r.loop_id();
            classify_frame(stack_.back());
            stack_.pop_back();
            if (match) break;
          }
          break;
        case trace::CheckpointType::BodyBegin:
        case trace::CheckpointType::BodyEnd:
          break;
      }
      return;
    case trace::RecordType::Access:
      break;
    case trace::RecordType::Call:
    case trace::RecordType::Ret:
      return;
  }
  if (r.kind() != trace::AccessKind::Data) return;

  // Region lookup: last region with base <= addr, then a range check.
  const uint32_t addr = r.addr();
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](uint32_t a, const Region& reg) { return a < reg.base; });
  if (it == regions_.begin()) {
    ++unclassified_;
    return;
  }
  const Region& reg = *std::prev(it);
  if (addr - reg.base >= reg.size) {
    ++unclassified_;
    return;
  }
  if (reg.buffer < 0) {
    ++unpaired_main_;
    return;
  }
  // Paired traffic is attributed to the innermost active loop and
  // classified when that loop instance completes; top-level accesses
  // (outside any loop) can never be a transfer loop, so they are program
  // traffic immediately.
  if (stack_.empty()) {
    BufferCounters& b = buffers_[static_cast<size_t>(reg.buffer)];
    (reg.is_spm ? b.spm_accesses : b.main_accesses) += 1;
    return;
  }
  Tally* t = tally_in(&stack_.back(), reg.buffer);
  if (reg.is_spm) {
    (r.is_write() ? t->spm_writes : t->spm_reads) += 1;
  } else {
    (r.is_write() ? t->main_writes : t->main_reads) += 1;
  }
}

void ClassifyingSink::account(const Tally& t) {
  BufferCounters& b = buffers_[static_cast<size_t>(t.buffer)];
  const uint64_t spm = t.spm_reads + t.spm_writes;
  const uint64_t main = t.main_reads + t.main_writes;
  if (t.main_reads == t.spm_writes && spm > 0 && t.spm_reads == 0 &&
      t.main_writes == 0 && t.main_reads > 0) {
    // DRAM -> SPM byte-copy loop: one fill event.
    b.fill_events += 1;
    b.fill_bytes += t.spm_writes;
    b.transfer_words += (t.spm_writes + 3) / 4;
    return;
  }
  if (t.spm_reads == t.main_writes && main > 0 && t.spm_writes == 0 &&
      t.main_reads == 0 && t.spm_reads > 0) {
    // SPM -> DRAM byte-copy loop: one write-back event.
    b.writeback_events += 1;
    b.writeback_bytes += t.main_writes;
    b.transfer_words += (t.main_writes + 3) / 4;
    return;
  }
  b.spm_accesses += spm;
  b.main_accesses += main;
}

void ClassifyingSink::classify_frame(const Frame& f) {
  for (const Tally& t : f.tallies) account(t);
}

void ClassifyingSink::finalize() {
  if (finalized_) return;
  finalized_ = true;
  while (!stack_.empty()) {
    classify_frame(stack_.back());
    stack_.pop_back();
  }
}

uint64_t ClassifyingSink::total_spm_accesses() {
  finalize();
  uint64_t n = 0;
  for (const auto& b : buffers_) n += b.spm_accesses;
  return n;
}

uint64_t ClassifyingSink::total_main_accesses() {
  finalize();
  uint64_t n = unpaired_main_;
  for (const auto& b : buffers_) n += b.main_accesses;
  return n;
}

uint64_t ClassifyingSink::total_transfer_words() {
  finalize();
  uint64_t n = 0;
  for (const auto& b : buffers_) n += b.transfer_words;
  return n;
}

}  // namespace foray::sim
