// Execution semantics shared by both MiniC engines.
//
// The AST interpreter (sim/interp_impl.h) and the bytecode VM (sim/vm.h)
// must produce bit-identical traces, outputs, and memory images — the
// differential harness (tests/engine_equivalence_test.cpp) enforces it.
// Everything whose behavior could plausibly drift between the two lives
// here exactly once: value conversion, binary-operator semantics
// (including pointer scaling and the divide-by-zero faults), intrinsic
// execution, and the chunked record transport. The engines differ only
// in how they walk the program, never in what an operation does.
//
// The intrinsic runner is templated on a Host concept implemented by
// both engines:
//   Memory&      memory();
//   util::Rng&   rng();
//   void         append_output(const std::string&);
//   void         emit_access(uint32_t instr, uint32_t addr, uint8_t size,
//                            bool is_write, trace::AccessKind kind);
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "minic/ast.h"
#include "minic/intrinsics.h"
#include "sim/interpreter.h"
#include "sim/memory.h"
#include "sim/value.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"

namespace foray::sim::internal {

/// Thrown by the exit() intrinsic to unwind the whole simulation.
struct ExitSignal {
  int code;
};

FORAY_ALWAYS_INLINE Value convert_value(const Value& v,
                                        const minic::Type& t) {
  using minic::BaseType;
  if (t.is_float()) return Value::of_float(v.as_float());
  if (t.is_pointer()) {
    Value out = v;
    out.type = t;
    out.i = static_cast<int64_t>(v.as_addr());
    return out;
  }
  int64_t x = v.as_int();
  switch (t.base) {
    case BaseType::Char: x = static_cast<int8_t>(x); break;
    case BaseType::Short: x = static_cast<int16_t>(x); break;
    case BaseType::Int: x = static_cast<int32_t>(x); break;
    default: break;
  }
  return Value::of_int(x, t);
}

FORAY_ALWAYS_INLINE Value apply_binary_op(minic::BinaryOp op, const Value& a,
                                          const Value& b,
                                          const minic::Type& result_type) {
  using minic::BinaryOp;
  // Pointer arithmetic scales by pointee size.
  if (op == BinaryOp::Add || op == BinaryOp::Sub) {
    if (a.type.is_pointer() && b.type.is_pointer()) {
      FORAY_CHECK(op == BinaryOp::Sub, "sema rejects ptr+ptr");
      int64_t sz = a.type.deref().size();
      if (sz == 0) sz = 1;
      return Value::of_int((a.i - b.i) / sz);
    }
    if (a.type.is_pointer()) {
      int64_t sz = a.type.deref().size();
      int64_t off = b.as_int() * sz;
      return Value::of_int(op == BinaryOp::Add ? a.i + off : a.i - off,
                           a.type);
    }
    if (b.type.is_pointer()) {
      int64_t sz = b.type.deref().size();
      return Value::of_int(b.i + a.as_int() * sz, b.type);
    }
  }
  const bool flt = a.is_float() || b.is_float();
  switch (op) {
    case BinaryOp::Add:
      return flt ? Value::of_float(a.as_float() + b.as_float())
                 : Value::of_int(a.i + b.i, result_type);
    case BinaryOp::Sub:
      return flt ? Value::of_float(a.as_float() - b.as_float())
                 : Value::of_int(a.i - b.i, result_type);
    case BinaryOp::Mul:
      return flt ? Value::of_float(a.as_float() * b.as_float())
                 : Value::of_int(a.i * b.i, result_type);
    case BinaryOp::Div:
      if (flt) {
        return Value::of_float(a.as_float() / b.as_float());
      }
      if (b.i == 0) throw RuntimeError("integer division by zero");
      return Value::of_int(a.i / b.i, result_type);
    case BinaryOp::Mod:
      if (b.as_int() == 0) throw RuntimeError("modulo by zero");
      return Value::of_int(a.as_int() % b.as_int());
    case BinaryOp::Shl:
      return Value::of_int(a.as_int() << (b.as_int() & 63));
    case BinaryOp::Shr:
      return Value::of_int(a.as_int() >> (b.as_int() & 63));
    case BinaryOp::Lt:
      return Value::of_int(flt ? a.as_float() < b.as_float() : a.i < b.i);
    case BinaryOp::Gt:
      return Value::of_int(flt ? a.as_float() > b.as_float() : a.i > b.i);
    case BinaryOp::Le:
      return Value::of_int(flt ? a.as_float() <= b.as_float() : a.i <= b.i);
    case BinaryOp::Ge:
      return Value::of_int(flt ? a.as_float() >= b.as_float() : a.i >= b.i);
    case BinaryOp::Eq:
      return Value::of_int(flt ? a.as_float() == b.as_float() : a.i == b.i);
    case BinaryOp::Ne:
      return Value::of_int(flt ? a.as_float() != b.as_float() : a.i != b.i);
    case BinaryOp::BitAnd:
      return Value::of_int(a.as_int() & b.as_int());
    case BinaryOp::BitOr:
      return Value::of_int(a.as_int() | b.as_int());
    case BinaryOp::BitXor:
      return Value::of_int(a.as_int() ^ b.as_int());
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
      break;  // handled by the engines (short circuit)
  }
  throw RuntimeError("unreachable binary op");
}

// -- chunked record transport -------------------------------------------------
//
// Records collect in a small local buffer and are handed to the sink in
// bulk. When SinkT is a concrete final sink (the online Extractor) the
// on_chunk() call devirtualizes and the whole per-record path inlines;
// even for SinkT = trace::Sink only one virtual call per chunk remains.

template <class SinkT>
class TraceEmitter {
 public:
  TraceEmitter(SinkT* sink, const RunOptions& opts)
      : sink_(sink),
        chunk_(std::max<size_t>(opts.chunk_records, 1)),
        trace_scalars_(opts.trace_scalars),
        trace_data_(opts.trace_data),
        trace_system_(opts.trace_system),
        emit_checkpoints_(opts.emit_checkpoints),
        max_records_(opts.budget.max_records),
        timeout_seconds_(opts.budget.timeout_seconds),
        cancel_(opts.budget.cancel.get()) {
    // Budget checks run only at chunk boundaries (the "budget plus one
    // chunk" contract), and only when some check is actually armed: an
    // unbudgeted, unfaulted run pays a single bool test per chunk.
    chunk_checked_ = opts.budget.chunk_checked() || util::fault::enabled();
    if (opts.budget.has_deadline()) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(timeout_seconds_));
    }
  }

  FORAY_ALWAYS_INLINE void push(const trace::Record& r) {
    chunk_[len_++] = r;
    if (len_ == chunk_.size()) {
      flush();
      // Check-after-delivery: a faulted run's trace still contains
      // everything up to the fault, and finalize_result's epilogue
      // flush() below can never throw.
      if (chunk_checked_) check_budget();
    }
  }

  void flush() {
    if (len_ != 0) {
      sink_->on_chunk(chunk_.data(), len_);
      records_ += len_;
      len_ = 0;
    }
  }

  void check_budget() {
    if (util::fault::enabled()) {
      // "sim.slow" models a stalling simulated program: each flush
      // sleeps `param` milliseconds, so a wall-clock deadline trips.
      const util::fault::Hit h = util::fault::hit("sim.slow");
      if (h.fired) {
        std::this_thread::sleep_for(std::chrono::milliseconds(h.param));
      }
    }
    if (cancel_ != nullptr && cancel_->cancelled()) {
      throw RuntimeError("run cancelled", util::ErrorCode::kCancelled);
    }
    if (max_records_ != 0 && records_ >= max_records_) {
      throw RuntimeError(
          "trace record budget exceeded (" + std::to_string(max_records_) +
              " records)",
          util::ErrorCode::kResourceExhausted);
    }
    if (timeout_seconds_ > 0.0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", timeout_seconds_);
      throw RuntimeError(
          std::string("wall-clock budget exceeded (") + buf + "s)",
          util::ErrorCode::kDeadlineExceeded);
    }
  }

  FORAY_ALWAYS_INLINE void emit_access(uint32_t instr, uint32_t addr,
                                       uint8_t size, bool is_write,
                                       trace::AccessKind kind) {
    ++accesses_;
    switch (kind) {
      case trace::AccessKind::Scalar:
        if (!trace_scalars_) return;
        break;
      case trace::AccessKind::Data:
        if (!trace_data_) return;
        break;
      case trace::AccessKind::System:
        if (!trace_system_) return;
        break;
    }
    push(trace::Record::access(instr, addr, size, is_write, kind));
  }

  void emit_checkpoint(trace::CheckpointType t, int loop_id) {
    if (emit_checkpoints_ && loop_id >= 0) {
      push(trace::Record::checkpoint(t, loop_id));
    }
  }

  uint64_t accesses() const { return accesses_; }
  /// Records delivered to the sink so far (excludes the unflushed tail).
  uint64_t records_flushed() const { return records_; }

 private:
  SinkT* sink_;
  std::vector<trace::Record> chunk_;
  size_t len_ = 0;
  uint64_t accesses_ = 0;
  uint64_t records_ = 0;
  const bool trace_scalars_, trace_data_, trace_system_, emit_checkpoints_;
  bool chunk_checked_ = false;
  const uint64_t max_records_;
  const double timeout_seconds_;
  std::chrono::steady_clock::time_point deadline_{};
  CancelToken* cancel_;  ///< kept alive by the engine's RunOptions copy
};

// -- shared engine-host plumbing ----------------------------------------------
//
// The output limit, the fault handling, and the run() epilogue are all
// observable behavior (harness-compared), so like the operator
// semantics they exist exactly once and both engines call them.

/// Appends simulated-program output under the shared size limit.
inline void append_output_limited(std::string* out, size_t max_bytes,
                                  const std::string& s) {
  if (out->size() + s.size() > max_bytes) {
    throw RuntimeError("simulated program output limit exceeded",
                       util::ErrorCode::kResourceExhausted);
  }
  *out += s;
}

/// Runs an engine body, translating every simulated-program exit:
/// ExitSignal (the exit() intrinsic) into an exit code, RuntimeError
/// into a "simulation" Status at the line the engine last visited
/// (carrying the fault's error class), a sink's StatusError into its
/// carried Status verbatim, and allocation failure (a trace the host
/// cannot hold) into resource_exhausted.
template <class Fn>
void execute_guarded(RunResult* result, const int* cur_line, Fn&& body) {
  try {
    body();
  } catch (const ExitSignal& e) {
    result->exit_code = e.code;
  } catch (const RuntimeError& e) {
    result->status =
        util::Status::failure(e.code(), "simulation", *cur_line, e.what());
  } catch (const util::StatusError& e) {
    result->status = e.status();
  } catch (const std::bad_alloc&) {
    result->status = util::Status::failure(
        util::ErrorCode::kResourceExhausted, "simulation", *cur_line,
        "out of memory during simulation");
  }
}

/// The shared run() epilogue. Flushing happens on every outcome — a
/// faulted run's trace must still contain everything up to the fault.
template <class SinkT>
void finalize_result(RunResult* result, TraceEmitter<SinkT>* emitter,
                     Memory* mem, const RunOptions& opts,
                     std::string* output, uint64_t steps) {
  emitter->flush();
  result->output = std::move(*output);
  result->steps = steps;
  result->accesses = emitter->accesses();
  if (opts.digest_memory) result->memory_digest = mem->digest();
}

// -- intrinsics ---------------------------------------------------------------

/// Reads a NUL-terminated string from simulated memory (no trace).
inline std::string read_cstring(Memory& mem, uint32_t addr,
                                size_t limit = 1u << 20) {
  std::string out;
  while (out.size() < limit) {
    uint8_t c = mem.load_byte(addr++);
    if (c == 0) break;
    out.push_back(static_cast<char>(c));
  }
  return out;
}

template <class Host>
std::string format_printf(Host& host, uint32_t instr, const std::string& fmt,
                          const Value* args, size_t nargs) {
  std::string out;
  size_t argi = 1;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i]);
      continue;
    }
    ++i;
    if (i >= fmt.size()) break;
    if (fmt[i] == '%') {
      out.push_back('%');
      continue;
    }
    // Skip flags / width / precision.
    std::string spec = "%";
    while (i < fmt.size() &&
           (std::isdigit(static_cast<unsigned char>(fmt[i])) ||
            fmt[i] == '.' || fmt[i] == '-' || fmt[i] == '+' ||
            fmt[i] == ' ' || fmt[i] == '0' || fmt[i] == 'l')) {
      if (fmt[i] != 'l') spec.push_back(fmt[i]);
      ++i;
    }
    if (i >= fmt.size()) break;
    char conv = fmt[i];
    if (argi >= nargs &&
        (conv == 'd' || conv == 'u' || conv == 'x' || conv == 'c' ||
         conv == 's' || conv == 'f' || conv == 'g' || conv == 'e')) {
      throw RuntimeError("printf: not enough arguments");
    }
    char buf[64];
    switch (conv) {
      case 'd': {
        spec += "lld";
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<long long>(args[argi++].as_int()));
        out += buf;
        break;
      }
      case 'u': {
        spec += "llu";
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<unsigned long long>(args[argi++].as_int()));
        out += buf;
        break;
      }
      case 'x': {
        spec += "llx";
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<unsigned long long>(args[argi++].as_int()));
        out += buf;
        break;
      }
      case 'c': {
        out.push_back(static_cast<char>(args[argi++].as_int()));
        break;
      }
      case 'f':
      case 'g':
      case 'e': {
        spec.push_back(conv);
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      args[argi++].as_float());
        out += buf;
        break;
      }
      case 's': {
        uint32_t saddr = args[argi++].as_addr();
        std::string s = read_cstring(host.memory(), saddr);
        // Reading the string payload is system-library traffic.
        for (size_t k = 0; k < s.size(); k += 4) {
          host.emit_access(instr, saddr + static_cast<uint32_t>(k),
                           static_cast<uint8_t>(std::min<size_t>(4,
                                                                 s.size() - k)),
                           false, trace::AccessKind::System);
        }
        out += s;
        break;
      }
      default:
        out += spec;
        out.push_back(conv);
    }
  }
  return out;
}

/// Executes one intrinsic call with fully evaluated arguments. `instr` is
/// the call expression's synthetic instruction address, `line` its source
/// line (used by assert's diagnostic).
template <class Host>
Value run_intrinsic(Host& host, minic::Intrinsic id, uint32_t instr,
                    int line, const Value* args, size_t nargs) {
  using minic::BaseType;
  using minic::Intrinsic;
  using trace::AccessKind;
  Memory& mem = host.memory();
  switch (id) {
    case Intrinsic::Printf: {
      std::string fmt = read_cstring(mem, args[0].as_addr());
      std::string text = format_printf(host, instr, fmt, args, nargs);
      host.append_output(text);
      return Value::of_int(static_cast<int64_t>(text.size()));
    }
    case Intrinsic::Putchar:
      host.append_output(std::string(1, static_cast<char>(args[0].as_int())));
      return args[0];
    case Intrinsic::Puts: {
      uint32_t saddr = args[0].as_addr();
      std::string s = read_cstring(mem, saddr);
      for (size_t k = 0; k < s.size(); k += 4) {
        host.emit_access(instr, saddr + static_cast<uint32_t>(k),
                         static_cast<uint8_t>(std::min<size_t>(4,
                                                               s.size() - k)),
                         false, AccessKind::System);
      }
      host.append_output(s + "\n");
      return Value::of_int(0);
    }
    case Intrinsic::Malloc: {
      int64_t n = args[0].as_int();
      if (n < 0) throw RuntimeError("malloc of negative size");
      uint32_t addr = mem.heap_alloc(static_cast<uint32_t>(n));
      return Value::of_ptr(addr, minic::make_type(BaseType::Char));
    }
    case Intrinsic::Free:
      return Value::void_value();
    case Intrinsic::Memset: {
      uint32_t dst = args[0].as_addr();
      uint8_t val = static_cast<uint8_t>(args[1].as_int());
      int64_t n = args[2].as_int();
      if (n < 0) throw RuntimeError("memset of negative size");
      for (int64_t k = 0; k < n; ++k) {
        mem.store_byte(dst + static_cast<uint32_t>(k), val);
      }
      for (int64_t k = 0; k < n; k += 4) {
        host.emit_access(instr, dst + static_cast<uint32_t>(k),
                         static_cast<uint8_t>(std::min<int64_t>(4, n - k)),
                         true, AccessKind::System);
      }
      return args[0];
    }
    case Intrinsic::Memcpy: {
      uint32_t dst = args[0].as_addr();
      uint32_t src = args[1].as_addr();
      int64_t n = args[2].as_int();
      if (n < 0) throw RuntimeError("memcpy of negative size");
      for (int64_t k = 0; k < n; ++k) {
        mem.store_byte(dst + static_cast<uint32_t>(k),
                       mem.load_byte(src + static_cast<uint32_t>(k)));
      }
      for (int64_t k = 0; k < n; k += 4) {
        uint8_t sz = static_cast<uint8_t>(std::min<int64_t>(4, n - k));
        host.emit_access(instr, src + static_cast<uint32_t>(k), sz, false,
                         AccessKind::System);
        host.emit_access(instr, dst + static_cast<uint32_t>(k), sz, true,
                         AccessKind::System);
      }
      return args[0];
    }
    case Intrinsic::Rand:
      return Value::of_int(static_cast<int64_t>(
          host.rng().next_below(1u << 30)));
    case Intrinsic::Srand:
      host.rng() = util::Rng(static_cast<uint64_t>(args[0].as_int()));
      return Value::void_value();
    case Intrinsic::Abs:
      return Value::of_int(std::llabs(args[0].as_int()));
    case Intrinsic::Sqrtf:
      return Value::of_float(std::sqrt(args[0].as_float()));
    case Intrinsic::Sinf:
      return Value::of_float(std::sin(args[0].as_float()));
    case Intrinsic::Cosf:
      return Value::of_float(std::cos(args[0].as_float()));
    case Intrinsic::Expf:
      return Value::of_float(std::exp(args[0].as_float()));
    case Intrinsic::Logf:
      return Value::of_float(std::log(args[0].as_float()));
    case Intrinsic::Powf:
      return Value::of_float(std::pow(args[0].as_float(),
                                      args[1].as_float()));
    case Intrinsic::Fabsf:
      return Value::of_float(std::fabs(args[0].as_float()));
    case Intrinsic::Floorf:
      return Value::of_float(std::floor(args[0].as_float()));
    case Intrinsic::Assert:
      if (!args[0].truthy()) {
        throw RuntimeError("assertion failed (line " + std::to_string(line) +
                           ")");
      }
      return Value::void_value();
    case Intrinsic::Exit:
      throw ExitSignal{static_cast<int>(args[0].as_int())};
  }
  throw RuntimeError("unreachable intrinsic");
}

}  // namespace foray::sim::internal
