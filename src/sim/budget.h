// Execution budgets for simulated programs.
//
// User programs are not terminating-by-construction: a service that
// simulates them must be able to bound every run in steps, trace volume
// and wall-clock time, and to cancel it cooperatively. The budget is
// enforced at two frequencies chosen so the hot loops stay check-free:
//
//   max_steps            every instruction — but as a register-cached
//                        counter compare both engines already paid for
//   records / deadline / checked once per flushed trace chunk by the
//   cancellation token    shared TraceEmitter (sim/exec_common.h)
//
// Chunk-boundary checking means a run can overshoot a record or time
// budget by at most one chunk (RunOptions::chunk_records, default 1024
// records) — the documented "budget plus one chunk" contract. A program
// that emits no records (a pure spin loop) is caught by max_steps, which
// is why the step guard keeps a finite default.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace foray::sim {

/// Cooperative cancellation: the owner flips it, the engines observe it
/// at chunk boundaries and fault the run with ErrorCode::kCancelled.
/// Shared (thread-safe) between the controller and any number of runs.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

struct Budget {
  /// Evaluation-step guard — the backstop that bounds even record-free
  /// spin loops. Trips as kResourceExhausted.
  uint64_t max_steps = 500'000'000;
  /// Trace records emitted (post-filter) before the run faults as
  /// kResourceExhausted; 0 = unlimited.
  uint64_t max_records = 0;
  /// Wall-clock seconds from engine start before the run faults as
  /// kDeadlineExceeded; 0 = no deadline. Each simulation (including a
  /// replay re-run) starts its own clock.
  double timeout_seconds = 0.0;
  /// Optional cancellation token; trips as kCancelled.
  std::shared_ptr<CancelToken> cancel;

  bool has_deadline() const { return timeout_seconds > 0.0; }
  /// The step guard the engines compare against; 0 means unlimited.
  uint64_t effective_max_steps() const {
    return max_steps == 0 ? UINT64_MAX : max_steps;
  }
  /// True when any chunk-boundary check (records/deadline/cancel) is
  /// active — the emitter skips all budget work otherwise.
  bool chunk_checked() const {
    return max_records != 0 || has_deadline() || cancel != nullptr;
  }
};

}  // namespace foray::sim
