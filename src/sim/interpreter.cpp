#include "sim/interpreter.h"

#include "sim/interp_impl.h"

namespace foray::sim {

RunResult run_program(const minic::Program& prog, trace::Sink* sink,
                      const RunOptions& opts) {
  trace::NullSink null_sink;
  trace::Sink* s = sink != nullptr ? sink : &null_sink;
  return run_program_with(prog, s, opts);
}

}  // namespace foray::sim
