#include "sim/interpreter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/interp_impl.h"

namespace foray::sim {

Engine default_engine() {
  static const Engine engine = [] {
    const char* env = std::getenv("FORAY_ENGINE");
    if (env == nullptr || *env == '\0') return Engine::Bytecode;
    if (std::strcmp(env, "ast") == 0) return Engine::Ast;
    if (std::strcmp(env, "bytecode") == 0) return Engine::Bytecode;
    if (std::strcmp(env, "jit") == 0) return Engine::Jit;
    // An unrecognized value must not silently fall back to the default:
    // the CI matrix relies on FORAY_ENGINE=ast actually exercising the
    // reference engine, so a typo has to fail loudly, not pass green.
    std::fprintf(stderr,
                 "FORAY_ENGINE='%s' is not a known engine (use 'ast', "
                 "'bytecode' or 'jit')\n",
                 env);
    std::exit(2);
  }();
  return engine;
}

namespace {
/// Validates FORAY_ENGINE at program start rather than at first
/// simulation: a CI leg whose tests happen to never simulate must
/// still fail loudly on a misspelled engine name.
const Engine kEngineValidatedEagerly = default_engine();
}  // namespace

RunResult run_program(const minic::Program& prog, trace::Sink* sink,
                      const RunOptions& opts) {
  trace::NullSink null_sink;
  trace::Sink* s = sink != nullptr ? sink : &null_sink;
  return run_program_with(prog, s, opts);
}

}  // namespace foray::sim
