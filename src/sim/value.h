// Runtime values for the MiniC instruction-set simulator.
#pragma once

#include <cstdint>

#include "minic/ast.h"
#include "util/inline.h"

namespace foray::sim {

/// A runtime value: integers/pointers in `i`, floats in `f`. The static
/// type tag decides which payload is live and how stores narrow.
/// The factories/accessors are forced inline: they run several times per
/// VM instruction, and the engines' dispatch loops are big enough that
/// the inliner would otherwise leave them as calls.
struct Value {
  minic::Type type;
  int64_t i = 0;
  double f = 0.0;

  static FORAY_ALWAYS_INLINE Value of_int(
      int64_t v, minic::Type t = minic::make_type(minic::BaseType::Int)) {
    Value x;
    x.type = t;
    x.i = v;
    return x;
  }
  static FORAY_ALWAYS_INLINE Value of_float(double v) {
    Value x;
    x.type = minic::make_type(minic::BaseType::Float);
    x.f = v;
    return x;
  }
  static FORAY_ALWAYS_INLINE Value of_ptr(uint32_t addr,
                                          minic::Type pointee) {
    Value x;
    x.type = pointee.address_of();
    x.i = static_cast<int64_t>(addr);
    return x;
  }
  static Value void_value() {
    Value x;
    x.type = minic::make_type(minic::BaseType::Void);
    return x;
  }

  FORAY_ALWAYS_INLINE bool is_float() const { return type.is_float(); }

  FORAY_ALWAYS_INLINE int64_t as_int() const {
    return is_float() ? static_cast<int64_t>(f) : i;
  }
  FORAY_ALWAYS_INLINE double as_float() const {
    return is_float() ? f : static_cast<double>(i);
  }
  FORAY_ALWAYS_INLINE uint32_t as_addr() const {
    return static_cast<uint32_t>(as_int());
  }
  FORAY_ALWAYS_INLINE bool truthy() const {
    return is_float() ? f != 0.0 : i != 0;
  }
};

}  // namespace foray::sim
