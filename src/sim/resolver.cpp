#include "sim/resolver.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace foray::sim {

namespace {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;
using minic::VarDecl;

class Resolver {
 public:
  explicit Resolver(const Program& prog) : prog_(prog) {
    const size_t nodes = static_cast<size_t>(prog.num_nodes) + 1;
    out_.ident.resize(nodes);
    out_.decl_slot.assign(nodes, -1);
    out_.func_slots.assign(prog.funcs.size(), 0);
  }

  VarResolution run() {
    // Globals bind in declaration order; an initializer sees only the
    // globals declared before it (plus itself), exactly like the
    // interpreter's allocation loop.
    for (const VarDecl& d : prog_.globals) {
      const int32_t index = out_.globals++;
      globals_[d.name] = index;
      resolve_init(d);
    }
    for (const auto& fn : prog_.funcs) {
      next_slot_ = 0;
      max_slot_ = 0;
      scopes_.clear();
      scopes_.emplace_back();
      for (const auto& p : fn->params) {
        bind_decl_node(p.node_id, p.name);
      }
      walk_stmt(fn->body.get());
      scopes_.clear();
      FORAY_CHECK(fn->func_id >= 0 &&
                      static_cast<size_t>(fn->func_id) <
                          out_.func_slots.size(),
                  "function ids must be dense");
      out_.func_slots[static_cast<size_t>(fn->func_id)] = max_slot_;
    }
    return std::move(out_);
  }

 private:
  void bind_decl_node(int node_id, const std::string& name) {
    const int32_t slot = next_slot_++;
    if (next_slot_ > max_slot_) max_slot_ = next_slot_;
    if (node_id >= 0) {
      if (static_cast<size_t>(node_id) >= out_.decl_slot.size()) {
        out_.decl_slot.resize(static_cast<size_t>(node_id) + 1, -1);
      }
      out_.decl_slot[static_cast<size_t>(node_id)] = slot;
    }
    FORAY_CHECK(!scopes_.empty(), "declaration outside any scope");
    scopes_.back()[name] = slot;
  }

  void resolve_init(const VarDecl& d) {
    if (d.init) walk_expr(d.init.get());
    for (const auto& e : d.init_list) walk_expr(e.get());
  }

  void walk_stmt(const Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Expr:
      case StmtKind::Return:
        walk_expr(s->expr.get());
        break;
      case StmtKind::Decl:
        for (const VarDecl& d : s->decls) {
          // The declaration registers before its initializer runs.
          bind_decl_node(d.node_id, d.name);
          resolve_init(d);
        }
        break;
      case StmtKind::If:
        walk_expr(s->cond.get());
        walk_stmt(s->then_branch.get());
        walk_stmt(s->else_branch.get());
        break;
      case StmtKind::While:
      case StmtKind::DoWhile:
      case StmtKind::For:
        // exec_loop opens one scope that holds the for-initializer.
        scopes_.emplace_back();
        walk_stmt(s->init.get());
        walk_expr(s->cond.get());
        walk_expr(s->step.get());
        walk_stmt(s->body.get());
        scopes_.pop_back();
        break;
      case StmtKind::Block:
        scopes_.emplace_back();
        for (const auto& st : s->stmts) walk_stmt(st.get());
        scopes_.pop_back();
        break;
      case StmtKind::Break:
      case StmtKind::Continue:
      case StmtKind::Empty:
        break;
    }
  }

  void walk_expr(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::Ident) {
      VarResolution::Binding b;
      for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto found = it->find(e->name);
        if (found != it->end()) {
          b.index = found->second;
          b.global = false;
          b.resolved = true;
          break;
        }
      }
      if (!b.resolved) {
        auto g = globals_.find(e->name);
        if (g != globals_.end()) {
          b.index = g->second;
          b.global = true;
          b.resolved = true;
        }
      }
      if (static_cast<size_t>(e->node_id) >= out_.ident.size()) {
        out_.ident.resize(static_cast<size_t>(e->node_id) + 1);
      }
      out_.ident[static_cast<size_t>(e->node_id)] = b;
      return;
    }
    walk_expr(e->a.get());
    walk_expr(e->b.get());
    walk_expr(e->c.get());
    for (const auto& arg : e->args) walk_expr(arg.get());
  }

  const Program& prog_;
  VarResolution out_;
  std::unordered_map<std::string, int32_t> globals_;
  std::vector<std::unordered_map<std::string, int32_t>> scopes_;
  int32_t next_slot_ = 0;
  int32_t max_slot_ = 0;
};

}  // namespace

VarResolution resolve_variables(const minic::Program& prog) {
  return Resolver(prog).run();
}

}  // namespace foray::sim
