// E2 — Table II: loops and references converted into FORAY form.
//
// Left half: what FORAY-GEN's Algorithm 1 finds (loops / references
// representable in FORAY form). Right half: the share of those that are
// NOT already in FORAY form in the source, i.e. invisible to static SPM
// techniques — computed by joining the dynamic model with the static
// baseline analyzer. Ends with the paper's headline metric: the average
// increase in analyzable references.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace foray;
  std::printf("== Table II: loops and references converted into FORAY "
              "form ==\n");
  std::printf("(paper values in parentheses)\n\n");

  util::TablePrinter tp({"benchmark", "model loops", "model refs",
                         "loops not FORAY", "refs not FORAY",
                         "ref increase"});
  double log_sum = 0.0;
  int counted = 0;
  for (const auto& b : benchsuite::all_benchmarks()) {
    auto a = bench::analyze_benchmark(b);
    const auto& cs = a.conversion;
    char inc[32];
    std::snprintf(inc, sizeof inc, "%.2fx", cs.ref_increase_factor());
    tp.add_row({b.name,
                bench::fmt_d(cs.model_loops) + " (" +
                    bench::fmt_d(b.paper.model_loops) + ")",
                bench::fmt_d(cs.model_refs) + " (" +
                    bench::fmt_d(b.paper.model_refs) + ")",
                bench::fmt_pct(cs.pct_loops_not_foray()) + " (" +
                    bench::fmt_d(b.paper.pct_loops_not_foray) + "%)",
                bench::fmt_pct(cs.pct_refs_not_foray()) + " (" +
                    bench::fmt_d(b.paper.pct_refs_not_foray) + "%)",
                inc});
    if (cs.model_refs > 0) {
      log_sum += std::log(cs.ref_increase_factor());
      ++counted;
    }
  }
  std::printf("%s\n", tp.str().c_str());
  std::printf("geomean analyzable-reference increase: %.2fx "
              "(paper headline: ~2x on average)\n",
              std::exp(log_sum / counted));

  // Design-choice ablation: sensitivity of the model size to the Step 4
  // filter constants Nexec / Nloc (paper uses 20 / 10).
  std::printf("\n-- filter sensitivity (jpeg): refs kept for "
              "(Nexec, Nloc) --\n");
  util::TablePrinter ft({"Nexec", "Nloc", "model refs", "model loops"});
  for (uint64_t nexec : {1u, 5u, 20u, 100u}) {
    for (uint64_t nloc : {1u, 10u, 64u}) {
      core::PipelineOptions opts;
      opts.filter.min_exec = nexec;
      opts.filter.min_locations = nloc;
      auto a = bench::analyze_benchmark(benchsuite::get_benchmark("jpeg"),
                                        opts);
      ft.add_row({bench::fmt_d(static_cast<long long>(nexec)),
                  bench::fmt_d(static_cast<long long>(nloc)),
                  bench::fmt_d(a.conversion.model_refs),
                  bench::fmt_d(a.conversion.model_loops)});
    }
  }
  std::printf("%s", ft.str().c_str());
  return 0;
}
