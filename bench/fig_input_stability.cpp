// E11 — the paper's future work, answered: how input-dependent is the
// extracted FORAY model?
//
// Each benchmark is profiled with three different input seeds (the
// simulated rand() that perturbs its input data) and the models are
// diffed pairwise. The methodology-relevant result: affine *structure*
// (coefficients, partial depth) is essentially input-independent — what
// drifts with data are trip counts and the population of references in
// data-dependent control flow.
#include <cstdio>

#include "bench_util.h"
#include "foray/model_diff.h"

int main() {
  using namespace foray;
  std::printf("== E11: FORAY-model stability across profiling inputs ==\n");
  std::printf("(three input seeds per benchmark, pairwise model diffs)\n\n");

  util::TablePrinter tp({"benchmark", "refs s1/s2/s3", "structural",
                         "exact", "detail (s1 vs s2)"});
  for (const auto& b : benchsuite::all_benchmarks()) {
    core::ForayModel models[3];
    size_t counts[3];
    for (int s = 0; s < 3; ++s) {
      core::PipelineOptions opts;
      opts.run.rng_seed = static_cast<uint64_t>(1000 + 77 * s);
      auto res = core::run_pipeline(b.source, opts);
      if (!res.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", b.name.c_str(),
                     res.error().c_str());
        return 1;
      }
      models[s] = std::move(res.model);
      counts[s] = models[s].refs.size();
    }
    double structural = 1.0, exact = 1.0;
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        auto d = core::diff_models(models[i], models[j]);
        structural = std::min(structural, d.structural_stability());
        exact = std::min(exact, d.exact_stability());
      }
    }
    auto d12 = core::diff_models(models[0], models[1]);
    tp.add_row({b.name,
                std::to_string(counts[0]) + "/" + std::to_string(counts[1]) +
                    "/" + std::to_string(counts[2]),
                util::pct(structural, 1.0), util::pct(exact, 1.0),
                d12.summary()});
  }
  std::printf("%s\n", tp.str().c_str());
  std::printf(
      "Reading: 'structural' counts references whose affine function\n"
      "(coefficients, partial depth) is identical across inputs — the\n"
      "property SPM buffer planning relies on. Trip drift and one-sided\n"
      "references come from data-dependent loop bounds and branches.\n");
  return 0;
}
