// E9 — §4 online-analysis claim: the analysis is single-pass and in
// order, so it can run during profiling and the (typically large) trace
// file never needs to exist.
//
// For every benchmark: run the pipeline online and offline, verify the
// models are identical, and report the memory the offline path had to
// materialize (trace records) against the online analyzer's constant
// working set.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "trace/io.h"

int main() {
  using namespace foray;
  std::printf("== E9: online (no trace file) vs offline analysis ==\n\n");
  util::TablePrinter tp({"benchmark", "trace records", "offline trace MB",
                         "online state KB", "models identical"});
  for (const auto& b : benchsuite::all_benchmarks()) {
    core::PipelineOptions online_opts;
    auto online = core::run_pipeline(b.source, online_opts);
    core::PipelineOptions offline_opts;
    offline_opts.offline = true;
    auto offline = core::run_pipeline(b.source, offline_opts);
    if (!online.ok() || !offline.ok()) {
      std::fprintf(stderr, "%s failed\n", b.name.c_str());
      return 1;
    }
    bool same = online.model.refs.size() == offline.model.refs.size();
    if (same) {
      for (size_t i = 0; i < online.model.refs.size(); ++i) {
        const auto& x = online.model.refs[i];
        const auto& y = offline.model.refs[i];
        if (x.instr != y.instr || x.fn.coefs != y.fn.coefs ||
            x.fn.const_term != y.fn.const_term ||
            x.exec_count != y.exec_count) {
          same = false;
          break;
        }
      }
    }
    // Offline cost: the binary encoding of the whole trace.
    const double trace_mb =
        static_cast<double>(online.trace_records) * 11.0 / 1e6;
    const double state_kb =
        static_cast<double>(online.extractor->state_bytes()) / 1e3;
    char mb[32], kb[32];
    std::snprintf(mb, sizeof mb, "%.2f", trace_mb);
    std::snprintf(kb, sizeof kb, "%.1f", state_kb);
    tp.add_row({b.name, std::to_string(online.trace_records), mb, kb,
                same ? "yes" : "NO"});
    if (!same) return 1;
  }
  std::printf("%s\n", tp.str().c_str());
  std::printf("The online analyzer's working set is the loop tree, KBs —\n"
              "orders of magnitude below the trace volume it replaces.\n");
  return 0;
}
