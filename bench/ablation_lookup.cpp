// E8 — §4 hash-table claim: "the complexity of Algorithms 2 and 3 is
// constant on average if we use hash tables for the searches".
//
// Compares the hash-indexed extractor with the linear-scan ablation on
// traces whose loop bodies contain a growing number of distinct
// references: hash lookup stays flat per record, linear scan degrades
// with the reference count.
#include <benchmark/benchmark.h>

#include <vector>

#include "foray/extractor.h"

namespace {

using foray::core::Extractor;
using foray::core::ExtractorOptions;
using foray::trace::AccessKind;
using foray::trace::CheckpointType;
using foray::trace::Record;

std::vector<Record> make_trace(int refs_per_body, int rounds) {
  std::vector<Record> t;
  t.push_back(Record::checkpoint(CheckpointType::LoopEnter, 0));
  for (int i = 0; i < rounds; ++i) {
    t.push_back(Record::checkpoint(CheckpointType::BodyBegin, 0));
    for (int r = 0; r < refs_per_body; ++r) {
      t.push_back(Record::access(
          0x400000 + 4 * static_cast<uint32_t>(r),
          0x10000000 + static_cast<uint32_t>(i * 4 + r * 4096), 4, false,
          AccessKind::Data));
    }
    t.push_back(Record::checkpoint(CheckpointType::BodyEnd, 0));
  }
  t.push_back(Record::checkpoint(CheckpointType::LoopExit, 0));
  return t;
}

template <bool kHashIndex>
void BM_Lookup(benchmark::State& state) {
  auto trace = make_trace(static_cast<int>(state.range(0)), 256);
  for (auto _ : state) {
    ExtractorOptions opts;
    opts.hash_index = kHashIndex;
    Extractor ex(opts);
    for (const Record& r : trace) ex.on_record(r);
    benchmark::DoNotOptimize(ex.tree().ref_node_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}

void BM_HashIndex(benchmark::State& state) { BM_Lookup<true>(state); }
void BM_LinearScan(benchmark::State& state) { BM_Lookup<false>(state); }

}  // namespace

BENCHMARK(BM_HashIndex)->Arg(4)->Arg(32)->Arg(256)->Arg(1024);
BENCHMARK(BM_LinearScan)->Arg(4)->Arg(32)->Arg(256)->Arg(1024);

BENCHMARK_MAIN();
