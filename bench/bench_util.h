// Shared helpers for the table-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "benchsuite/suite.h"
#include "foray/pipeline.h"
#include "staticforay/static_analysis.h"
#include "util/strings.h"

namespace foray::bench {

struct AnalyzedBenchmark {
  const benchsuite::Benchmark* bench = nullptr;
  core::PipelineResult pipeline;
  staticforay::Analysis analysis;
  staticforay::ConversionStats conversion;
};

/// Runs the full FORAY-GEN pipeline plus the static baseline on one
/// benchmark; aborts the process with a message on failure (bench
/// binaries should fail loudly).
inline AnalyzedBenchmark analyze_benchmark(const benchsuite::Benchmark& b,
                                           core::PipelineOptions opts = {}) {
  AnalyzedBenchmark out;
  out.bench = &b;
  out.pipeline = core::run_pipeline(b.source, opts);
  if (!out.pipeline.ok) {
    std::fprintf(stderr, "benchmark %s failed: %s\n", b.name.c_str(),
                 out.pipeline.error.c_str());
    std::exit(1);
  }
  out.analysis = staticforay::analyze(*out.pipeline.program);
  out.conversion =
      staticforay::compute_conversion(out.pipeline.model, out.analysis);
  return out;
}

inline std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%", v);
  return buf;
}

inline std::string fmt_pct1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v);
  return buf;
}

inline std::string fmt_d(long long v) { return std::to_string(v); }

}  // namespace foray::bench
