// Shared helpers for the table-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "benchsuite/suite.h"
#include "driver/session.h"
#include "foray/pipeline.h"
#include "staticforay/static_analysis.h"
#include "util/strings.h"

namespace foray::bench {

struct AnalyzedBenchmark {
  const benchsuite::Benchmark* bench = nullptr;
  core::PipelineResult pipeline;
  staticforay::Analysis analysis;
  staticforay::ConversionStats conversion;
};

/// Runs the full FORAY-GEN pipeline (through the driver's Session, the
/// same code path the CLI uses) plus the static baseline on one
/// benchmark; aborts the process with a message on failure (bench
/// binaries should fail loudly).
inline AnalyzedBenchmark analyze_benchmark(const benchsuite::Benchmark& b,
                                           core::PipelineOptions opts = {}) {
  AnalyzedBenchmark out;
  out.bench = &b;
  driver::Session session(b.name, b.source, driver::SessionOptions{opts});
  if (!session.run().ok()) {
    std::fprintf(stderr, "benchmark %s failed: %s\n", b.name.c_str(),
                 session.status().message().c_str());
    std::exit(1);
  }
  out.pipeline = session.take_result();
  out.analysis = staticforay::analyze(*out.pipeline.program);
  out.conversion =
      staticforay::compute_conversion(out.pipeline.model, out.analysis);
  return out;
}

inline std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%", v);
  return buf;
}

inline std::string fmt_pct1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v);
  return buf;
}

inline std::string fmt_d(long long v) { return std::to_string(v); }

}  // namespace foray::bench
