// E10 — the motivation the paper's flow serves: FORAY-GEN expands the
// reach of SPM optimization (Phase II), so the energy a downstream SPM
// technique can save grows accordingly.
//
// The whole suite runs through the sweep driver (parallel sessions, one
// SpmPhase per capacity-axis point) — the same code path as `foraygen
// sweep`. The full-model savings and the knapsack-vs-greedy DSE ablation
// come straight from the sweep items; only the static-reach
// counterfactual (restricting the model to what a static analysis could
// see) and the cache comparison stay bench-local, because they evaluate
// models the SpmPhase never builds.
#include <cstdio>

#include "bench_util.h"
#include "driver/sweep.h"
#include "spm/address_stream.h"
#include "spm/cache_sim.h"
#include "spm/dse.h"
#include "spm/spm_sim.h"

namespace {

using namespace foray;

/// Restricts a model to the statically-visible references.
core::ForayModel static_subset(const core::ForayModel& model,
                               const staticforay::Analysis& analysis) {
  core::ForayModel out;
  for (const auto& r : model.refs) {
    bool static_ok =
        analysis.ref_is_affine(minic::node_for_instr_addr(r.instr));
    for (int loop : r.emitted_loop_path()) {
      if (!analysis.loop_is_canonical(loop)) static_ok = false;
    }
    if (static_ok) out.refs.push_back(r);
  }
  return out;
}

double best_savings_pct(const core::ForayModel& full_model,
                        const core::ForayModel& optimizable,
                        const spm::DseOptions& opts) {
  auto cands = spm::enumerate_candidates(optimizable);
  spm::Selection sel = spm::select_buffers(cands, opts);
  // Energy is evaluated against the FULL model traffic: references the
  // restricted analysis cannot see still hit main memory.
  spm::EnergyReport rep = spm::evaluate_selection(full_model, sel, opts);
  return rep.savings_pct();
}

}  // namespace

int main() {
  std::printf("== E10: SPM energy savings, static-only reach vs "
              "FORAY-GEN reach ==\n\n");

  driver::SweepOptions sopts;
  sopts.threads = 4;
  sopts.spec.capacities = {4096, 1024};  // main table, then DSE ablation
  driver::SweepDriver sweep(sopts);
  auto jobs = driver::SweepDriver::benchsuite_jobs();
  auto report = sweep.run(jobs);

  spm::DseOptions opts;
  opts.spm_capacity = 4096;

  util::TablePrinter tp({"benchmark", "refs static", "refs FORAY-GEN",
                         "savings static", "savings FORAY-GEN",
                         "cache 4KB/2way"});
  for (size_t j = 0; j < jobs.size(); ++j) {
    const driver::Session& session = *report.sessions[j];
    if (!session.status().ok()) {  // bench binaries fail loudly
      std::fprintf(stderr, "benchmark %s failed: %s\n", jobs[j].name.c_str(),
                   session.status().message().c_str());
      return 1;
    }
    const auto& model = session.result().model;
    const driver::SweepItem& item =
        report.at(driver::PointKey{j, 0, 0, 0, 0, 0});

    auto analysis = staticforay::analyze(*session.result().program);
    core::ForayModel static_model = static_subset(model, analysis);
    double s_static = best_savings_pct(model, static_model, opts);
    double s_foray = item.spm.with_spm.savings_pct();

    // Cache comparison on the same traffic.
    spm::CacheSim cache(spm::CacheConfig{4096, 32, 2});
    spm::for_each_address(model, [&](uint32_t addr) { cache.access(addr); });
    const double base_nj = item.spm.baseline.baseline_nj;
    const double cache_savings =
        base_nj > 0.0
            ? 100.0 * (base_nj - cache.energy_nj(opts.energy)) / base_nj
            : 0.0;

    char s1[16], s2[16], s3[16];
    std::snprintf(s1, sizeof s1, "%.1f%%", s_static);
    std::snprintf(s2, sizeof s2, "%.1f%%", s_foray);
    std::snprintf(s3, sizeof s3, "%.1f%%", cache_savings);
    tp.add_row({jobs[j].name, std::to_string(static_model.refs.size()),
                std::to_string(model.refs.size()), s1, s2, s3});
  }
  std::printf("%s\n", tp.str().c_str());

  // DSE ablation: exact group knapsack vs greedy density heuristic, both
  // solved by the SpmPhase at the 1KB capacity.
  std::printf("-- DSE ablation (knapsack vs greedy), 1KB SPM --\n");
  util::TablePrinter dt({"benchmark", "knapsack nJ saved",
                         "greedy nJ saved"});
  for (size_t j = 0; j < jobs.size(); ++j) {
    const driver::SweepItem& item =
        report.at(driver::PointKey{j, 1, 0, 0, 0, 0});
    char g1[32], g2[32];
    std::snprintf(g1, sizeof g1, "%.0f", item.spm.exact.saved_nj);
    std::snprintf(g2, sizeof g2, "%.0f", item.spm.greedy.saved_nj);
    dt.add_row({jobs[j].name, g1, g2});
  }
  std::printf("%s", dt.str().c_str());
  return 0;
}
