// E10 — the motivation the paper's flow serves: FORAY-GEN expands the
// reach of SPM optimization (Phase II), so the energy a downstream SPM
// technique can save grows accordingly.
//
// For every benchmark, Phase II (reuse analysis + group-knapsack buffer
// selection + energy evaluation) runs twice: once restricted to the
// references a static analysis could already see, and once over the full
// FORAY-GEN model. Also reports an SPM-vs-cache comparison (Banakar-style
// argument) and the knapsack-vs-greedy DSE ablation.
#include <cstdio>

#include "bench_util.h"
#include "spm/address_stream.h"
#include "spm/cache_sim.h"
#include "spm/dse.h"
#include "spm/spm_sim.h"

namespace {

using namespace foray;

/// Restricts a model to the statically-visible references.
core::ForayModel static_subset(const core::ForayModel& model,
                               const staticforay::Analysis& analysis) {
  core::ForayModel out;
  for (const auto& r : model.refs) {
    bool static_ok =
        analysis.ref_is_affine(minic::node_for_instr_addr(r.instr));
    for (int loop : r.emitted_loop_path()) {
      if (!analysis.loop_is_canonical(loop)) static_ok = false;
    }
    if (static_ok) out.refs.push_back(r);
  }
  return out;
}

double best_savings_pct(const core::ForayModel& full_model,
                        const core::ForayModel& optimizable,
                        const spm::DseOptions& opts) {
  auto cands = spm::enumerate_candidates(optimizable);
  spm::Selection sel = spm::select_buffers(cands, opts);
  // Energy is evaluated against the FULL model traffic: references the
  // restricted analysis cannot see still hit main memory.
  spm::EnergyReport base = spm::evaluate_baseline(full_model, opts.energy);
  spm::EnergyReport rep = spm::evaluate_selection(full_model, sel, opts);
  (void)base;
  return rep.savings_pct();
}

}  // namespace

int main() {
  std::printf("== E10: SPM energy savings, static-only reach vs "
              "FORAY-GEN reach ==\n\n");
  spm::DseOptions opts;
  opts.spm_capacity = 4096;

  util::TablePrinter tp({"benchmark", "refs static", "refs FORAY-GEN",
                         "savings static", "savings FORAY-GEN",
                         "cache 4KB/2way"});
  for (const auto& b : benchsuite::all_benchmarks()) {
    auto a = bench::analyze_benchmark(b);
    core::ForayModel static_model =
        static_subset(a.pipeline.model, a.analysis);

    double s_static =
        best_savings_pct(a.pipeline.model, static_model, opts);
    double s_foray =
        best_savings_pct(a.pipeline.model, a.pipeline.model, opts);

    // Cache comparison on the same traffic.
    spm::CacheSim cache(spm::CacheConfig{4096, 32, 2});
    spm::for_each_address(a.pipeline.model,
                          [&](uint32_t addr) { cache.access(addr); });
    spm::EnergyReport base =
        spm::evaluate_baseline(a.pipeline.model, opts.energy);
    const double cache_savings =
        base.baseline_nj > 0.0
            ? 100.0 * (base.baseline_nj - cache.energy_nj(opts.energy)) /
                  base.baseline_nj
            : 0.0;

    char s1[16], s2[16], s3[16];
    std::snprintf(s1, sizeof s1, "%.1f%%", s_static);
    std::snprintf(s2, sizeof s2, "%.1f%%", s_foray);
    std::snprintf(s3, sizeof s3, "%.1f%%", cache_savings);
    tp.add_row({b.name, std::to_string(static_model.refs.size()),
                std::to_string(a.pipeline.model.refs.size()), s1, s2, s3});
  }
  std::printf("%s\n", tp.str().c_str());

  // DSE ablation: exact group knapsack vs greedy density heuristic.
  std::printf("-- DSE ablation (knapsack vs greedy), 1KB SPM --\n");
  util::TablePrinter dt({"benchmark", "knapsack nJ saved",
                         "greedy nJ saved"});
  spm::DseOptions small = opts;
  small.spm_capacity = 1024;
  for (const auto& b : benchsuite::all_benchmarks()) {
    auto a = bench::analyze_benchmark(b);
    auto cands = spm::enumerate_candidates(a.pipeline.model);
    auto dp = spm::select_buffers(cands, small);
    auto greedy = spm::select_buffers_greedy(cands, small);
    char g1[32], g2[32];
    std::snprintf(g1, sizeof g1, "%.0f", dp.saved_nj);
    std::snprintf(g2, sizeof g2, "%.0f", greedy.saved_nj);
    dt.add_row({b.name, g1, g2});
  }
  std::printf("%s", dt.str().c_str());
  return 0;
}
