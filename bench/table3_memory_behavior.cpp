// E3 — Table III: memory behavior of the FORAY models.
//
// Splits every benchmark's dynamic references, accesses and footprint
// into the paper's three buckets: captured by the FORAY model, system
// (intrinsic) references, and everything else. Bucket footprints are
// computed independently and may overlap, exactly as in the paper.
#include <cstdio>

#include "bench_util.h"
#include "foray/stats.h"

int main() {
  using namespace foray;
  std::printf("== Table III: memory behavior of the FORAY models ==\n");
  std::printf("(per bucket: share of refs / accesses / footprint; paper "
              "values in parentheses)\n\n");

  util::TablePrinter tp({"benchmark", "refs", "accesses", "footprint",
                         "model r/a/f", "system r/a/f", "other fp"});
  for (const auto& b : benchsuite::all_benchmarks()) {
    auto a = bench::analyze_benchmark(b);
    core::BehaviorStats st = core::compute_behavior(
        a.pipeline.extractor->tree(), core::FilterOptions{});
    auto share = [&](uint64_t num, uint64_t den) {
      return util::pct(static_cast<double>(num), static_cast<double>(den));
    };
    std::string model = share(st.model.refs, st.total.refs) + "/" +
                        share(st.model.accesses, st.total.accesses) + "/" +
                        share(st.model.footprint, st.total.footprint);
    std::string model_paper = " (" + bench::fmt_pct1(b.paper.model_ref_pct) +
                              "/" + bench::fmt_pct1(b.paper.model_access_pct) +
                              "/" + bench::fmt_pct1(b.paper.model_fp_pct) +
                              ")";
    std::string sys = share(st.system.refs, st.total.refs) + "/" +
                      share(st.system.accesses, st.total.accesses) + "/" +
                      share(st.system.footprint, st.total.footprint);
    std::string sys_paper = " (" + bench::fmt_pct1(b.paper.sys_ref_pct) +
                            "/" + bench::fmt_pct1(b.paper.sys_access_pct) +
                            "/" + bench::fmt_pct1(b.paper.sys_fp_pct) + ")";
    std::string other = share(st.other.footprint, st.total.footprint) +
                        " (" + bench::fmt_pct1(b.paper.other_fp_pct) + ")";
    tp.add_row({b.name,
                std::to_string(st.total.refs) + " (" +
                    util::human_count(
                        static_cast<uint64_t>(b.paper.total_refs)) + ")",
                util::human_count(st.total.accesses) + " (" +
                    util::human_count(
                        static_cast<uint64_t>(b.paper.total_accesses)) + ")",
                util::human_count(st.total.footprint) + " (" +
                    util::human_count(static_cast<uint64_t>(
                        b.paper.total_footprint)) + ")",
                model + model_paper, sys + sys_paper, other});
  }
  std::printf("%s\n", tp.str().c_str());
  std::printf(
      "Shape check (paper: 2.2%% of refs -> 29%% of accesses, 44%% of\n"
      "footprint on average): few model references concentrate a\n"
      "disproportionate share of traffic. Our ISS keeps scalars in\n"
      "simulated memory (no register allocation), which inflates the\n"
      "'other' bucket relative to the paper's compiled binaries.\n");
  return 0;
}
