// E7 — §4 complexity claims: analysis time is linear in the number of
// profiled records, and online analysis uses constant space with respect
// to trace length.
//
// google-benchmark over synthetic traces of growing length but fixed
// loop-tree shape; the per-record cost must stay flat (linear total) and
// the extractor's state must not grow with trace length.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "foray/extractor.h"

namespace {

using foray::core::Extractor;
using foray::core::ExtractorOptions;
using foray::trace::AccessKind;
using foray::trace::CheckpointType;
using foray::trace::Record;

/// One outer iteration of a fixed 8-reference doubly-nested loop body.
void append_round(std::vector<Record>* t, uint32_t round) {
  t->push_back(Record::checkpoint(CheckpointType::BodyBegin, 0));
  t->push_back(Record::checkpoint(CheckpointType::LoopEnter, 1));
  for (uint32_t j = 0; j < 16; ++j) {
    t->push_back(Record::checkpoint(CheckpointType::BodyBegin, 1));
    for (uint32_t r = 0; r < 8; ++r) {
      t->push_back(Record::access(0x400100 + 4 * r,
                                  0x10000000 + (round % 64) * 1024 +
                                      j * 16 + r * 4,
                                  4, r % 2 == 0, AccessKind::Data));
    }
    t->push_back(Record::checkpoint(CheckpointType::BodyEnd, 1));
  }
  t->push_back(Record::checkpoint(CheckpointType::LoopExit, 1));
  t->push_back(Record::checkpoint(CheckpointType::BodyEnd, 0));
}

std::vector<Record> make_trace(int rounds) {
  std::vector<Record> t;
  t.push_back(Record::checkpoint(CheckpointType::LoopEnter, 0));
  for (int i = 0; i < rounds; ++i) {
    append_round(&t, static_cast<uint32_t>(i));
  }
  t.push_back(Record::checkpoint(CheckpointType::LoopExit, 0));
  return t;
}

void BM_AnalysisThroughput(benchmark::State& state) {
  auto trace = make_trace(static_cast<int>(state.range(0)));
  size_t final_state_bytes = 0;
  for (auto _ : state) {
    Extractor ex;
    for (const Record& r : trace) ex.on_record(r);
    benchmark::DoNotOptimize(ex.tree().ref_node_count());
    final_state_bytes = ex.state_bytes();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
  state.counters["records"] = static_cast<double>(trace.size());
  state.counters["state_bytes"] = static_cast<double>(final_state_bytes);
  // Linear-time claim: items_per_second should be constant across trace
  // sizes. Constant-space claim: state_bytes flat across sizes.
}

}  // namespace

BENCHMARK(BM_AnalysisThroughput)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096);

BENCHMARK_MAIN();
