// Profiling/extraction throughput over the benchsuite — the perf
// trajectory for the chunked zero-virtual-call trace transport and the
// sharded extractor.
//
// Per benchmark it measures, in records/sec:
//   sim       bytecode-VM simulator filling a VectorSink (the default
//             engine; chunked emission)
//   sim_ast   the same run on the tree-walking reference interpreter —
//             the sim-engine axis; the engines' traces are
//             bit-identical (tests/engine_equivalence_test), so the
//             ratio is pure engine speed
//   sim_jit   the same run on the native template-JIT engine
//             (src/jit/); compiled once outside the timed region, 0 on
//             builds without native codegen
//   online    simulator + online analysis fused (Vm<Extractor>, the
//             zero-virtual-call path, bytecode engine)
//   online_ast the fused path on the tree walker (Interp<Extractor>)
//   online_jit the fused path on the jit engine (its own native image:
//             the handler table is per sink type)
//   record    extraction replay, record-at-a-time through the virtual
//             Sink interface (the pre-PR transport shape)
//   chunked   extraction replay, bulk on_chunk() delivery
//   shard2/4  context-sharded extraction (foray/shard.h) with its
//             balance factor (1.0 = perfectly spreadable; the benchsuite
//             kernels are dominated by one top-level loop, so expect
//             poor spread on most of them — that is a property of the
//             programs, reported, not hidden)
//   online_pipe  pipeline-overlapped online profiling: the simulator
//             produces chunks into rings, one consumer thread extracts
//             concurrently (foray/online_pipeline.h) — end-to-end
//             sim+extract time, so compare against `online`, not the
//             replay modes
//   tshard2/4 time-partition sharded extraction (foray/timeshard.h):
//             the trace cut into K time slices extracted concurrently
//             and reconciled exactly — parallelism even when one
//             context dominates (balance-immune, unlike shard2/4)
//
// Every multi-run-capable mode is timed best-of-3: the 1-core container
// shares its core with neighbors, and a single cold run routinely reads
// 2x under the machine's real capability. (Shard modes used to be timed
// single-shot, which is where the historical gsm shard4 < shard2
// anomaly in BENCH_profiling.json came from — one noisy run published
// as the number.) Results go to BENCH_profiling.json together with the
// pre-PR seed baselines (measured at commit 87dbf5c on the 1-core dev
// container) so future sessions can track multiples against a fixed
// reference.
//
// Usage:
//   bench_profiling_throughput [--program NAME] [--json PATH]
//                              [--check-floor FLOOR_JSON]
// --check-floor reads {"program": ..., "floor_mrec_s": X, and
// optionally "sim_floor_mrec_s": Y and "online_floor_mrec_s": Z} and
// exits 1 if the chunked replay throughput falls below X, the sim
// throughput below Y, or the fused online throughput below Z (the CI
// perf smoke; floors sit far enough under dev-container numbers to
// absorb runner variance but above the previous-PR throughput, so a
// regression to the old engine's speed fails). The sim and online
// floors track the fastest available engine — the jit where native
// codegen exists, the bytecode VM elsewhere — so the floor can ratchet
// past what the VM alone can reach.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "benchsuite/suite.h"
#include "foray/online_pipeline.h"
#include "jit/engine.h"
#include "foray/pipeline.h"
#include "foray/shard.h"
#include "foray/timeshard.h"
#include "sim/interp_impl.h"
#include "trace/sink.h"
#include "util/json.h"

namespace {

using namespace foray;
using Clock = std::chrono::steady_clock;

// Pre-PR reference points (seed commit 87dbf5c, 1-core dev container,
// aggregate over the six benchsuite programs, same methodology).
constexpr double kSeedSimMrecS = 15.4;
constexpr double kSeedExtractMrecS = 41.1;
constexpr double kSeedOnlineMrecS = 15.6;

struct ModeResult {
  double mrec_s = 0.0;
  double balance = 0.0;  ///< shard modes only
};

struct ProgramResult {
  std::string name;
  uint64_t records = 0;
  double sim = 0, sim_ast = 0, sim_jit = 0, online = 0, online_ast = 0,
         online_jit = 0, record = 0, chunked = 0;
  ModeResult shard2, shard4;
  double online_pipe = 0;        ///< overlapped sim+extract, 1 consumer
  double tshard2 = 0, tshard4 = 0;
};

double mrec_s(uint64_t records, double seconds) {
  return seconds > 0 ? static_cast<double>(records) / seconds / 1e6 : 0.0;
}

template <class Fn>
double timed(Fn&& fn) {
  auto t0 = Clock::now();
  fn();
  auto t1 = Clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best of three runs — see the header comment on noise.
template <class Fn>
double timed_best(Fn&& fn) {
  double best = timed(fn);
  for (int i = 0; i < 2; ++i) best = std::min(best, timed(fn));
  return best;
}

ProgramResult run_one(const benchsuite::Benchmark& b) {
  ProgramResult out;
  out.name = b.name;

  core::PipelineResult res;
  core::PipelineOptions opts;
  if (!core::frontend_phase(b.source, &res).ok() ||
      !core::instrument_phase(&res).ok()) {
    std::fprintf(stderr, "%s: frontend failed: %s\n", b.name.c_str(),
                 res.error().c_str());
    std::exit(1);
  }

  sim::RunOptions bc_opts = opts.run;
  bc_opts.engine = sim::Engine::Bytecode;
  sim::RunOptions ast_opts = opts.run;
  ast_opts.engine = sim::Engine::Ast;
  // Compile once, outside every timed region: the bench measures
  // engine execution throughput, not per-run compilation.
  const sim::CompiledProgram compiled = sim::compile_program(*res.program);

  // Every timed run checks ok(): a faulted simulation (different step
  // accounting can, in principle, trip limits on one engine only) must
  // abort the bench rather than publish a truncated-run throughput.
  auto check = [&](const sim::RunResult& run) {
    if (!run.ok()) {
      std::fprintf(stderr, "%s: simulation failed: %s\n", b.name.c_str(),
                   run.error().c_str());
      std::exit(1);
    }
  };

  trace::VectorSink sink;
  const double t_sim = timed_best([&] {
    sink.clear();
    check(sim::run_compiled_with(compiled, &sink, bc_opts));
  });
  const auto& recs = sink.records();
  out.records = recs.size();
  out.sim = mrec_s(out.records, t_sim);

  out.sim_ast = mrec_s(out.records, timed_best([&] {
    trace::VectorSink ast_sink(out.records);
    check(sim::run_program_with(*res.program, &ast_sink, ast_opts));
  }));

  out.online = mrec_s(out.records, timed_best([&] {
    core::Extractor ex;
    check(sim::run_compiled_with(compiled, &ex, bc_opts));
  }));

  out.online_ast = mrec_s(out.records, timed_best([&] {
    core::Extractor ex;
    check(sim::run_program_with(*res.program, &ex, ast_opts));
  }));

  // Jit columns: one native image per sink type (the handler table is
  // part of the code), both compiled outside the timed regions. On
  // builds without native codegen the columns publish as 0.
  if (jit::jit_supported()) {
    std::unique_ptr<jit::CompiledNative> native_sink, native_ex;
    util::Status js = jit::compile_native(
        compiled, jit::JitOps<trace::VectorSink>::handlers(),
        jit::JitOps<trace::VectorSink>::layout(), &native_sink);
    util::Status je = jit::compile_native(
        compiled, jit::JitOps<core::Extractor>::handlers(),
        jit::JitOps<core::Extractor>::layout(), &native_ex);
    if (!js.ok() || !je.ok()) {
      std::fprintf(stderr, "%s: jit compile failed: %s\n", b.name.c_str(),
                   (js.ok() ? je : js).message().c_str());
      std::exit(1);
    }
    out.sim_jit = mrec_s(out.records, timed_best([&] {
      trace::VectorSink jsink(out.records);
      check(jit::run_jit_compiled(compiled, *native_sink, &jsink, bc_opts));
    }));
    out.online_jit = mrec_s(out.records, timed_best([&] {
      core::Extractor ex;
      check(jit::run_jit_compiled(compiled, *native_ex, &ex, bc_opts));
    }));
  }

  out.record = mrec_s(out.records, timed([&] {
    core::Extractor ex;
    trace::Sink* s = &ex;  // force the virtual record-at-a-time path
    for (const auto& r : recs) s->on_record(r);
  }));

  out.chunked = mrec_s(out.records, timed([&] {
    core::Extractor ex;
    ex.on_chunk(recs.data(), recs.size());
  }));

  for (int k : {2, 4}) {
    // best-of-3 like the sim/online modes: the single-shot timing these
    // modes used before is what produced the gsm shard4 anomaly — on a
    // shared 1-core box one preempted run can halve the published
    // number while shard2's run happened to land clean.
    core::ShardReport rep;
    double t = timed_best([&] {
      auto ex = core::extract_sharded({recs.data(), recs.size()},
                                      core::ExtractorOptions{}, k, &rep);
      (void)ex;
    });
    ModeResult& slot = (k == 2) ? out.shard2 : out.shard4;
    slot.mrec_s = mrec_s(out.records, t);
    slot.balance = rep.balance;
  }

  out.online_pipe = mrec_s(out.records, timed_best([&] {
    core::Extractor ex;
    check(core::run_profile_pipelined(*res.program, bc_opts,
                                      core::ExtractorOptions{}, 1, &ex));
  }));

  for (int k : {2, 4}) {
    double t = timed_best([&] {
      auto ex = core::extract_time_sharded({recs.data(), recs.size()},
                                           core::ExtractorOptions{}, k);
      (void)ex;
    });
    ((k == 2) ? out.tshard2 : out.tshard4) = mrec_s(out.records, t);
  }
  return out;
}

void write_json(const std::string& path,
                const std::vector<ProgramResult>& rows, bool full_suite) {
  util::JsonWriter w;
  uint64_t total = 0;
  double ts = 0, ta = 0, tj = 0, to = 0, toa = 0, toj = 0, tr = 0, tc = 0,
         t2 = 0, t4 = 0, tp = 0, tt2 = 0, tt4 = 0;
  auto add = [](double* acc, uint64_t records, double mrec) {
    if (mrec > 0) *acc += records / 1e6 / mrec;
  };
  for (const auto& r : rows) {
    total += r.records;
    add(&ts, r.records, r.sim);
    add(&ta, r.records, r.sim_ast);
    add(&tj, r.records, r.sim_jit);
    add(&to, r.records, r.online);
    add(&toa, r.records, r.online_ast);
    add(&toj, r.records, r.online_jit);
    add(&tr, r.records, r.record);
    add(&tc, r.records, r.chunked);
    add(&t2, r.records, r.shard2.mrec_s);
    add(&t4, r.records, r.shard4.mrec_s);
    add(&tp, r.records, r.online_pipe);
    add(&tt2, r.records, r.tshard2);
    add(&tt4, r.records, r.tshard4);
  }
  const double agg_sim = ts > 0 ? total / 1e6 / ts : 0.0;
  const double agg_sim_ast = ta > 0 ? total / 1e6 / ta : 0.0;
  const double agg_sim_jit = tj > 0 ? total / 1e6 / tj : 0.0;
  const double agg_chunked = tc > 0 ? total / 1e6 / tc : 0.0;
  w.begin_object();
  w.key("bench").value("profiling_throughput");
  w.key("unit").value("Mrec/s");
  w.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  w.key("sim_engine_default").value("bytecode");
  w.key("programs").begin_array();
  for (const auto& r : rows) {
    w.begin_object();
    w.key("program").value(r.name);
    w.key("records").value(r.records);
    w.key("sim").value(r.sim);
    w.key("sim_ast").value(r.sim_ast);
    w.key("sim_jit").value(r.sim_jit);
    w.key("online").value(r.online);
    w.key("online_ast").value(r.online_ast);
    w.key("online_jit").value(r.online_jit);
    w.key("record_at_a_time").value(r.record);
    w.key("chunked").value(r.chunked);
    w.key("shard2").value(r.shard2.mrec_s);
    w.key("shard2_balance").value(r.shard2.balance);
    w.key("shard4").value(r.shard4.mrec_s);
    w.key("shard4_balance").value(r.shard4.balance);
    w.key("online_pipeline").value(r.online_pipe);
    w.key("timeshard2").value(r.tshard2);
    w.key("timeshard4").value(r.tshard4);
    w.end_object();
  }
  w.end_array();
  // The seed baselines are whole-suite aggregates; a --program subset
  // run has no comparable denominator, so those sections are omitted.
  if (full_suite) {
    w.key("aggregate").begin_object();
    w.key("records").value(total);
    w.key("sim").value(agg_sim);
    w.key("sim_ast").value(agg_sim_ast);
    w.key("sim_jit").value(agg_sim_jit);
    w.key("online").value(to > 0 ? total / 1e6 / to : 0.0);
    w.key("online_ast").value(toa > 0 ? total / 1e6 / toa : 0.0);
    w.key("online_jit").value(toj > 0 ? total / 1e6 / toj : 0.0);
    w.key("record_at_a_time").value(tr > 0 ? total / 1e6 / tr : 0.0);
    w.key("chunked").value(agg_chunked);
    w.key("shard2").value(t2 > 0 ? total / 1e6 / t2 : 0.0);
    w.key("shard4").value(t4 > 0 ? total / 1e6 / t4 : 0.0);
    w.key("online_pipeline").value(tp > 0 ? total / 1e6 / tp : 0.0);
    w.key("timeshard2").value(tt2 > 0 ? total / 1e6 / tt2 : 0.0);
    w.key("timeshard4").value(tt4 > 0 ? total / 1e6 / tt4 : 0.0);
    w.end_object();
    w.key("seed_baseline").begin_object();
    w.key("commit").value("87dbf5c");
    w.key("machine").value("1-core dev container");
    w.key("sim").value(kSeedSimMrecS);
    w.key("extract_record_at_a_time").value(kSeedExtractMrecS);
    w.key("online").value(kSeedOnlineMrecS);
    w.end_object();
    w.key("multiples_vs_seed").begin_object();
    w.key("sim").value(agg_sim / kSeedSimMrecS);
    w.key("sim_ast").value(agg_sim_ast / kSeedSimMrecS);
    w.key("sim_jit").value(agg_sim_jit / kSeedSimMrecS);
    w.key("online").value(to > 0 ? total / 1e6 / to / kSeedOnlineMrecS : 0.0);
    w.key("online_jit").value(
        toj > 0 ? total / 1e6 / toj / kSeedOnlineMrecS : 0.0);
    w.key("extract_chunked").value(agg_chunked / kSeedExtractMrecS);
    w.end_object();
    w.key("engine_speedup_sim").value(
        agg_sim_ast > 0 ? agg_sim / agg_sim_ast : 0.0);
    // bytecode -> jit: the tentpole ratio for this engine generation.
    w.key("engine_speedup_sim_jit").value(
        agg_sim > 0 ? agg_sim_jit / agg_sim : 0.0);
  } else {
    w.key("subset").value(true);
  }
  w.end_object();

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << w.str() << "\n";
}

/// Tiny extractor for the flat fields of the floor file; not a JSON
/// parser, just enough for {"program": "...", "floor_mrec_s": N,
/// "sim_floor_mrec_s": M, "online_floor_mrec_s": P}. The sim and online
/// floors are optional (0 = not checked).
bool read_floor(const std::string& path, std::string* program,
                double* floor, double* sim_floor, double* online_floor) {
  std::ifstream in(path);
  if (!in) return false;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto find_value = [&](const char* key) -> std::string {
    auto pos = text.find(key);
    if (pos == std::string::npos) return "";
    pos = text.find(':', pos);
    if (pos == std::string::npos) return "";
    ++pos;
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '"')) ++pos;
    std::string out;
    while (pos < text.size() && text[pos] != '"' && text[pos] != ',' &&
           text[pos] != '}' && text[pos] != '\n') {
      out += text[pos++];
    }
    return out;
  };
  *program = find_value("\"program\"");
  const std::string f = find_value("\"floor_mrec_s\"");
  if (program->empty() || f.empty()) return false;
  *floor = std::strtod(f.c_str(), nullptr);
  const std::string sf = find_value("\"sim_floor_mrec_s\"");
  *sim_floor = sf.empty() ? 0.0 : std::strtod(sf.c_str(), nullptr);
  const std::string of = find_value("\"online_floor_mrec_s\"");
  *online_floor = of.empty() ? 0.0 : std::strtod(of.c_str(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only, json_path = "BENCH_profiling.json", floor_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--program") && i + 1 < argc) {
      only = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--check-floor") && i + 1 < argc) {
      floor_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--program NAME] [--json PATH] "
                   "[--check-floor FLOOR_JSON]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<ProgramResult> rows;
  std::printf("== profiling throughput (Mrec/s) ==\n");
  std::printf("%-8s %10s %6s %7s %7s %7s %8s %7s %7s %8s %14s %14s %8s "
              "%7s %7s\n",
              "program", "records", "sim", "sim_ast", "sim_jit", "online",
              "onl_ast", "onl_jit", "record", "chunked", "shard2(bal)",
              "shard4(bal)", "onl_pipe", "tshard2", "tshard4");
  for (const auto& b : benchsuite::all_benchmarks()) {
    if (!only.empty() && b.name != only) continue;
    ProgramResult r = run_one(b);
    std::printf("%-8s %10llu %6.1f %7.1f %7.1f %7.1f %8.1f %7.1f %7.1f "
                "%8.1f %8.1f (%.2f) %8.1f (%.2f) %8.1f %7.1f %7.1f\n",
                r.name.c_str(), static_cast<unsigned long long>(r.records),
                r.sim, r.sim_ast, r.sim_jit, r.online, r.online_ast,
                r.online_jit, r.record, r.chunked, r.shard2.mrec_s,
                r.shard2.balance, r.shard4.mrec_s, r.shard4.balance,
                r.online_pipe, r.tshard2, r.tshard4);
    rows.push_back(std::move(r));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "no benchmark named '%s'\n", only.c_str());
    return 1;
  }
  write_json(json_path, rows, only.empty());
  std::printf("wrote %s\n", json_path.c_str());
  std::printf("(seed baseline, commit 87dbf5c: sim %.1f, extract %.1f, "
              "online %.1f Mrec/s)\n",
              kSeedSimMrecS, kSeedExtractMrecS, kSeedOnlineMrecS);

  if (!floor_path.empty()) {
    std::string program;
    double floor = 0, sim_floor = 0, online_floor = 0;
    if (!read_floor(floor_path, &program, &floor, &sim_floor,
                    &online_floor)) {
      std::fprintf(stderr, "cannot parse floor file %s\n",
                   floor_path.c_str());
      return 1;
    }
    for (const auto& r : rows) {
      if (r.name != program) continue;
      if (r.chunked < floor) {
        std::fprintf(stderr,
                     "PERF REGRESSION: %s chunked %.1f Mrec/s below floor "
                     "%.1f\n",
                     program.c_str(), r.chunked, floor);
        return 1;
      }
      // The floors hold the fastest engine to its number: jit where
      // native codegen exists, the bytecode VM elsewhere.
      const double sim_best = std::max(r.sim, r.sim_jit);
      const double online_best = std::max(r.online, r.online_jit);
      if (sim_floor > 0 && sim_best < sim_floor) {
        std::fprintf(stderr,
                     "PERF REGRESSION: %s sim %.1f Mrec/s below floor "
                     "%.1f\n",
                     program.c_str(), sim_best, sim_floor);
        return 1;
      }
      if (online_floor > 0 && online_best < online_floor) {
        std::fprintf(stderr,
                     "PERF REGRESSION: %s online %.1f Mrec/s below floor "
                     "%.1f\n",
                     program.c_str(), online_best, online_floor);
        return 1;
      }
      std::printf("floor check OK: %s chunked %.1f >= %.1f, sim %.1f >= "
                  "%.1f, online %.1f >= %.1f Mrec/s\n",
                  program.c_str(), r.chunked, floor, sim_best, sim_floor,
                  online_best, online_floor);
      return 0;
    }
    std::fprintf(stderr, "floor program '%s' was not measured\n",
                 program.c_str());
    return 1;
  }
  return 0;
}
