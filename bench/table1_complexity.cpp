// E1 — Table I: benchmark complexity and loop distribution.
//
// For every benchmark: source lines, number of loops executed during
// profiling, and the for/while/do split, printed next to the values the
// paper reports for the corresponding MiBench application. Absolute
// sizes differ (our benchmarks are scaled-down structural models — see
// DESIGN.md §2); the comparison targets the loop-form *mix*.
#include <cstdio>

#include "bench_util.h"
#include "foray/stats.h"

int main() {
  using namespace foray;
  std::printf("== Table I: benchmark complexity and loop distribution ==\n");
  std::printf("(paper values in parentheses; ours are scaled-down "
              "structural models)\n\n");

  util::TablePrinter tp({"benchmark", "lines", "loops", "for", "while",
                         "do"});
  for (const auto& b : benchsuite::all_benchmarks()) {
    auto a = bench::analyze_benchmark(b);
    core::LoopMix mix =
        core::compute_loop_mix(a.pipeline.extractor->tree(),
                               a.pipeline.loop_sites,
                               a.pipeline.program->source_lines);
    tp.add_row({b.name,
                bench::fmt_d(mix.lines) + " (" +
                    bench::fmt_d(b.paper.lines) + ")",
                bench::fmt_d(mix.total) + " (" +
                    bench::fmt_d(b.paper.loops) + ")",
                bench::fmt_pct(mix.pct_for()) + " (" +
                    bench::fmt_d(b.paper.pct_for) + "%)",
                bench::fmt_pct(mix.pct_while()) + " (" +
                    bench::fmt_d(b.paper.pct_while) + "%)",
                bench::fmt_pct(mix.pct_do()) + " (" +
                    bench::fmt_d(b.paper.pct_do) + "%)"});
  }
  std::printf("%s\n", tp.str().c_str());

  // The paper's aggregate observation: non-for loops are a significant
  // minority (23% on average in MiBench).
  double non_for_sum = 0;
  int counted = 0;
  for (const auto& b : benchsuite::all_benchmarks()) {
    auto a = bench::analyze_benchmark(b);
    core::LoopMix mix =
        core::compute_loop_mix(a.pipeline.extractor->tree(),
                               a.pipeline.loop_sites,
                               a.pipeline.program->source_lines);
    if (mix.total > 0) {
      non_for_sum += 100.0 - mix.pct_for();
      ++counted;
    }
  }
  std::printf("average non-for loop share: %.1f%% (paper: 23%%)\n",
              non_for_sum / counted);
  return 0;
}
