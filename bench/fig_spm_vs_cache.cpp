// E13 — capacity sweep: SPM (FORAY-GEN-planned buffers) vs cache across
// on-chip memory sizes, per benchmark.
//
// The Banakar-style series behind the paper's premise that SPMs beat
// caches when software can plan placement — which requires exactly the
// analyzable references FORAY-GEN recovers. Energy is normalized to the
// all-DRAM baseline (100% = no on-chip memory).
//
// The SPM side of every row is the batch driver's capacity sweep (one
// parallel pipeline run per benchmark, one SpmPhase per capacity — the
// `foraygen batch --capacity-sweep` code path); the cache columns replay
// the model's address stream through the bench-local cache simulator.
#include <cstdio>

#include "bench_util.h"
#include "driver/batch.h"
#include "spm/address_stream.h"
#include "spm/cache_sim.h"
#include "spm/dse.h"
#include "spm/spm_sim.h"

int main() {
  using namespace foray;
  std::printf("== E13: energy vs on-chip capacity, SPM (planned) vs "
              "cache ==\n");
  std::printf("(percent of the all-DRAM baseline energy; lower is "
              "better)\n\n");

  driver::BatchOptions bopts;
  bopts.threads = 4;
  bopts.capacities = {512, 1024, 2048, 4096, 8192, 16384};
  driver::BatchDriver batch(bopts);
  auto jobs = driver::BatchDriver::benchsuite_jobs();
  auto report = batch.run(jobs);
  const size_t n_caps = bopts.capacities.size();

  for (size_t j = 0; j < jobs.size(); ++j) {
    const driver::Session& session = *report.sessions[j];
    if (!session.status().ok()) {  // bench binaries fail loudly
      std::fprintf(stderr, "benchmark %s failed: %s\n", jobs[j].name.c_str(),
                   session.status().message().c_str());
      return 1;
    }
    const auto& model = session.result().model;

    util::TablePrinter tp({"capacity", "SPM energy", "cache 2-way",
                           "cache 4-way"});
    spm::EnergyModel energy;
    const double base_nj =
        report.item(j, 0, n_caps).spm.baseline.baseline_nj;
    for (size_t c = 0; c < n_caps; ++c) {
      const driver::BatchItem& item = report.item(j, c, n_caps);

      double cache_pct[2];
      int idx = 0;
      for (int assoc : {2, 4}) {
        spm::CacheSim cache(spm::CacheConfig{item.capacity, 32, assoc});
        spm::for_each_address(model,
                              [&](uint32_t addr) { cache.access(addr); });
        cache_pct[idx++] = 100.0 * cache.energy_nj(energy) / base_nj;
      }
      char s[16], c2[16], c4[16];
      std::snprintf(s, sizeof s, "%.1f%%",
                    100.0 * item.spm.with_spm.total_nj / base_nj);
      std::snprintf(c2, sizeof c2, "%.1f%%", cache_pct[0]);
      std::snprintf(c4, sizeof c4, "%.1f%%", cache_pct[1]);
      tp.add_row({std::to_string(item.capacity) + "B", s, c2, c4});
    }
    std::printf("-- %s --\n%s\n", jobs[j].name.c_str(), tp.str().c_str());
  }
  std::printf(
      "Reading: with reuse to exploit (susan/fft/lame/gsm) the planned\n"
      "SPM tracks or beats the cache without tag overheads once the\n"
      "working set fits; for streaming codes (adpcm) caches burn energy\n"
      "on misses (>100%%) while the SPM simply stays out of the way.\n");
  return 0;
}
