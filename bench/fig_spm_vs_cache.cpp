// E13 — capacity sweep: SPM (FORAY-GEN-planned buffers) vs cache across
// on-chip memory sizes, per benchmark.
//
// The Banakar-style series behind the paper's premise that SPMs beat
// caches when software can plan placement — which requires exactly the
// analyzable references FORAY-GEN recovers. Energy is normalized to the
// all-DRAM baseline (100% = no on-chip memory).
#include <cstdio>

#include "bench_util.h"
#include "spm/address_stream.h"
#include "spm/cache_sim.h"
#include "spm/dse.h"
#include "spm/spm_sim.h"

int main() {
  using namespace foray;
  std::printf("== E13: energy vs on-chip capacity, SPM (planned) vs "
              "cache ==\n");
  std::printf("(percent of the all-DRAM baseline energy; lower is "
              "better)\n\n");

  const uint32_t kSizes[] = {512, 1024, 2048, 4096, 8192, 16384};

  for (const auto& b : benchsuite::all_benchmarks()) {
    auto a = bench::analyze_benchmark(b);
    const auto& model = a.pipeline.model;
    auto cands = spm::enumerate_candidates(model);

    util::TablePrinter tp({"capacity", "SPM energy", "cache 2-way",
                           "cache 4-way"});
    spm::EnergyModel energy;
    spm::EnergyReport base = spm::evaluate_baseline(model, energy);
    for (uint32_t size : kSizes) {
      spm::DseOptions opts;
      opts.spm_capacity = size;
      auto sel = spm::select_buffers(cands, opts);
      auto rep = spm::evaluate_selection(model, sel, opts);

      double cache_pct[2];
      int idx = 0;
      for (int assoc : {2, 4}) {
        spm::CacheSim cache(spm::CacheConfig{size, 32, assoc});
        spm::for_each_address(model,
                              [&](uint32_t addr) { cache.access(addr); });
        cache_pct[idx++] =
            100.0 * cache.energy_nj(energy) / base.baseline_nj;
      }
      char s[16], c2[16], c4[16];
      std::snprintf(s, sizeof s, "%.1f%%",
                    100.0 * rep.total_nj / base.baseline_nj);
      std::snprintf(c2, sizeof c2, "%.1f%%", cache_pct[0]);
      std::snprintf(c4, sizeof c4, "%.1f%%", cache_pct[1]);
      tp.add_row({std::to_string(size) + "B", s, c2, c4});
    }
    std::printf("-- %s --\n%s\n", b.name.c_str(), tp.str().c_str());
  }
  std::printf(
      "Reading: with reuse to exploit (susan/fft/lame/gsm) the planned\n"
      "SPM tracks or beats the cache without tag overheads once the\n"
      "working set fits; for streaming codes (adpcm) caches burn energy\n"
      "on misses (>100%%) while the SPM simply stays out of the way.\n");
  return 0;
}
