// E13 — capacity sweep: SPM (FORAY-GEN-planned buffers) vs cache across
// on-chip memory sizes, per benchmark.
//
// The Banakar-style series behind the paper's premise that SPMs beat
// caches when software can plan placement — which requires exactly the
// analyzable references FORAY-GEN recovers. Energy is normalized to the
// all-DRAM baseline (100% = no on-chip memory).
//
// Both sides of every row come from the sweep driver's capacity axis
// (one parallel pipeline run per benchmark, one SpmPhase per grid point
// — the `foraygen sweep` code path): the SpmPhase's compare_cache mode
// replays the model's address stream through the LRU cache simulator,
// the same path `foraygen spm --compare-cache` uses. The cache axis is
// left at its inherited default so every point carries both the 2-way
// and the 4-way comparison, exactly as the pre-sweep batch run did.
#include <cstdio>

#include "bench_util.h"
#include "driver/sweep.h"

int main() {
  using namespace foray;
  std::printf("== E13: energy vs on-chip capacity, SPM (planned) vs "
              "cache ==\n");
  std::printf("(percent of the all-DRAM baseline energy; lower is "
              "better)\n\n");

  driver::SweepOptions sopts;
  sopts.threads = 4;
  sopts.spec.capacities = {512, 1024, 2048, 4096, 8192, 16384};
  sopts.pipeline.spm.compare_cache = true;  // assocs {2, 4} by default
  driver::SweepDriver sweep(sopts);
  auto jobs = driver::SweepDriver::benchsuite_jobs();
  auto report = sweep.run(jobs);
  const size_t n_caps = sopts.spec.capacities.size();

  for (size_t j = 0; j < jobs.size(); ++j) {
    const driver::Session& session = *report.sessions[j];
    if (!session.status().ok()) {  // bench binaries fail loudly
      std::fprintf(stderr, "benchmark %s failed: %s\n", jobs[j].name.c_str(),
                   session.status().message().c_str());
      return 1;
    }
    util::TablePrinter tp({"capacity", "SPM energy", "cache 2-way",
                           "cache 4-way"});
    const double base_nj =
        report.at(driver::PointKey{j, 0, 0, 0, 0, 0})
            .spm.baseline.baseline_nj;
    for (size_t c = 0; c < n_caps; ++c) {
      const driver::SweepItem& item =
          report.at(driver::PointKey{j, c, 0, 0, 0, 0});
      if (item.spm.caches.size() < 2) {
        std::fprintf(stderr, "missing cache comparison for %s\n",
                     item.program.c_str());
        return 1;
      }
      char s[16], c2[16], c4[16];
      std::snprintf(s, sizeof s, "%.1f%%",
                    100.0 * item.spm.with_spm.total_nj / base_nj);
      std::snprintf(c2, sizeof c2, "%.1f%%",
                    100.0 * item.spm.caches[0].energy_nj / base_nj);
      std::snprintf(c4, sizeof c4, "%.1f%%",
                    100.0 * item.spm.caches[1].energy_nj / base_nj);
      tp.add_row({std::to_string(item.point.capacity_bytes) + "B", s, c2,
                  c4});
    }
    std::printf("-- %s --\n%s\n", jobs[j].name.c_str(), tp.str().c_str());
  }
  std::printf(
      "Reading: with reuse to exploit (susan/fft/lame/gsm) the planned\n"
      "SPM tracks or beats the cache without tag overheads once the\n"
      "working set fits; for streaming codes (adpcm) caches burn energy\n"
      "on misses (>100%%) while the SPM simply stays out of the way.\n");
  return 0;
}
