// foraygen — command-line driver for the FORAY-GEN pipeline.
//
// Usage:
//   foraygen <command> <program.mc> [options]
//   foraygen batch [options]
//   foraygen sweep [program.mc] [options]
//   foraygen lint [program.mc] [options]
//   foraygen serve [options]
//
// Commands:
//   model      extract and print the FORAY model (paper display form)
//   emit       print the FORAY model as a runnable MiniC program
//   annotate   print the checkpoint-annotated source (Figure 4b view)
//   trace      dump the profiling trace in text form
//   stats      loop mix, conversion and memory-behavior statistics
//   hints      inter-function (duplication) hints
//   run        just execute the program and show its output
//   profile    profile + extract only; prints trace/extraction statistics
//   spm        Phase II: reuse analysis + DSE + energy (SpmPhase report)
//   batch      run the whole benchsuite through the pipeline in parallel
//              (a capacity-only sweep with table/JSON reporting)
//   sweep      multi-axis DSE grid (capacity × energy model × cache
//              geometry × algorithm × replay) over the benchsuite, or
//              over one program when a path is given; emits Pareto
//              frontiers and optionally streaming NDJSON
//   lint       sound static check (staticforay/checker.h): interval-
//              domain diagnostics (use-before-init, provable
//              out-of-bounds, provable div-by-zero, unreachable code,
//              canonical-iterator writes) plus static step/record cost
//              bounds, over one program or the whole benchsuite; a
//              *proven* fault exits 3, a merely-suspicious program
//              (warnings only) exits 0
//   serve      long-lived sweep service: one NDJSON request per stdin
//              line, one sweep NDJSON stream + done row per request
//              (driver/serve.h documents the protocol); Phase I models
//              are cached across requests
//
// Options:
//   --nexec N   Step 4 filter: minimum executions   (default 20)
//   --nloc N    Step 4 filter: minimum locations    (default 10)
//   --seed S    simulated rand() seed               (default 1)
//   --engine E  simulator engine: bytecode (default) or ast (the
//               tree-walking reference oracle); both produce
//               bit-identical traces (tests/engine_equivalence_test)
//   --offline   materialize the trace, then analyze (default: online)
//   --shards N  shard one program's extraction over N threads
//               (bit-identical to sequential; implies materializing)
//   --capacity N         spm: SPM size in bytes     (default 4096)
//   --compare-cache      spm: also replay through LRU caches
//   --replay             spm/batch/sweep: execute the transformed
//                        program and check its simulated traffic
//                        against the analytic counters; `spm --replay`
//                        exits nonzero on any counter mismatch
//   --threads N          batch/sweep: worker threads (default 1)
//   --capacity-sweep a,b,c  batch/sweep: SPM capacity axis
//   --json PATH          batch: also write the report as JSON;
//                        lint: write the diagnostics + cost bounds as
//                        one JSON document to PATH ('-' for stdout)
//                        instead of the human-readable report
//   --lint-first         sweep: statically check every program before
//                        its Phase I; a program the checker proves
//                        faulty gets one per-program `lint` error row
//                        instead of a failure row per grid point
//   --static-admission   serve: refuse requests whose static *minimum*
//                        step/record bound exceeds the request budget
//                        (resource_exhausted, phase "lint-admission")
//                        before any Phase I work runs
//   --energy-sweep a,b   sweep: energy-model axis — preset names with
//                        optional :field=value overrides, e.g.
//                        default,dram-heavy,default:dram_nj=5.2
//   --cache-sweep a,b    sweep: cache-comparison axis — off and/or
//                        LINExASSOC geometries, e.g. off,32x2,64x4
//   --algo-sweep a,b     sweep: selection-algorithm axis (dp, greedy)
//   --replay-sweep a,b   sweep: replay-validation axis (off, on)
//   --spec FILE          sweep: read axes from a key=value spec file
//                        (axis names: capacity energy cache algorithm
//                        replay; '#' comments); later axis flags
//                        override the file
//   --ndjson PATH        sweep: stream the grid as NDJSON to PATH
//                        ('-' for stdout) instead of printing tables;
//                        byte-identical whatever --threads is
//   --resume JOURNAL     sweep (with --ndjson): re-emit the points
//                        already completed in a previous run's NDJSON
//                        journal verbatim and run only the missing or
//                        failed ones; output is byte-identical to an
//                        uninterrupted run
//   --cache-dir DIR      batch/sweep/serve: content-addressed Phase I
//                        model cache. A warm run skips profiling and
//                        extraction entirely and is byte-identical to a
//                        cold one; corrupt or stale entries are detected,
//                        reported and recomputed. The FORAY_CACHE_DIR
//                        env var supplies a default.
//   --no-cache           batch/sweep/serve: ignore FORAY_CACHE_DIR and
//                        run uncached
//   --cache-max-bytes N  batch/sweep/serve: bound the on-disk model
//                        cache; after each store, oldest entries are
//                        evicted until the directory fits (0 =
//                        unbounded, the default)
//   --max-points N       serve: refuse requests whose grid exceeds N
//                        points (admission control; 0 = unlimited,
//                        default 4096)
//   --max-steps N        execution budget: evaluation steps per run
//                        (0 = unlimited; default 500000000)
//   --max-records N      execution budget: trace records per run
//                        (0 = unlimited)
//   --timeout SECONDS    execution budget: wall clock per simulation
//                        (0 = no deadline); checked at trace-chunk
//                        boundaries, so a run can overshoot by at most
//                        one chunk
//   --fault SPEC         arm fault-injection sites, e.g.
//                        sweep.sink.io:skip=1:count=1 (testing aid; the
//                        FORAY_FAULT env var is the equivalent)
//
// Exit codes (the error *class* decides, never the message):
//   0  success
//   1  analysis negative: transform-replay counter mismatch
//   2  usage/option error
//   3  invalid input (program/trace/spec failed to parse or check;
//      `lint` also exits 3 when the checker proves a fault)
//   4  budget exhausted, deadline exceeded, or cancelled
//   5  internal error (a bug in this library)
//   6  I/O error (unreadable/unwritable/truncated file)
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "driver/model_cache.h"
#include "driver/serve.h"
#include "driver/session.h"
#include "driver/sweep.h"
#include "foray/inline_advisor.h"
#include "jit/compiler.h"
#include "foray/model_diff.h"
#include "foray/pipeline.h"
#include "minic/parser.h"
#include "minic/printer.h"
#include "sim/interpreter.h"
#include "staticforay/checker.h"
#include "staticforay/pointer_conversion.h"
#include "staticforay/static_analysis.h"
#include "trace/io.h"
#include "trace/sink.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace foray;

int usage() {
  std::fprintf(
      stderr,
      "usage: foraygen <model|emit|annotate|trace|stats|hints|run|profile"
      "|spm> <program.mc> [--engine ast|bytecode|jit] [--nexec N] [--nloc N] "
      "[--seed S] [--offline] [--shards N] [--pipeline] [--timeshards N] "
      "[--capacity N] [--compare-cache] [--replay]\n"
      "       foraygen batch [--threads N] [--capacity-sweep a,b,c] "
      "[--engine ast|bytecode|jit] [--nexec N] [--nloc N] [--seed S] "
      "[--shards N] [--replay] [--json PATH]\n"
      "       foraygen sweep [program.mc] [--threads N] "
      "[--capacity-sweep a,b,c] [--energy-sweep a,b] [--cache-sweep "
      "off,32x2,...] [--algo-sweep dp,greedy] [--replay-sweep off,on] "
      "[--spec FILE] [--ndjson PATH|-] [--resume JOURNAL] [--lint-first] "
      "[--engine ast|bytecode|jit] [--nexec N] [--nloc N] [--seed S] "
      "[--shards N] [--replay]\n"
      "       foraygen lint [program.mc] [--json PATH|-]\n"
      "       foraygen serve [--threads N] [--max-points N] "
      "[--static-admission] "
      "[--engine ast|bytecode|jit] [--nexec N] [--nloc N] [--seed S]\n"
      "  batch/sweep/serve also accept the model-cache options "
      "[--cache-dir DIR] [--no-cache] [--cache-max-bytes N] "
      "(FORAY_CACHE_DIR is the default directory)\n"
      "  every command also accepts the execution-budget options "
      "[--max-steps N] [--max-records N] [--timeout SECONDS], the "
      "fault-injection aid [--fault SPEC], and the jit debug aid "
      "[--dump-jit]\n");
  return 2;
}

/// Named option error: satisfies the CLI contract that a bad or
/// misplaced flag is reported by name with a nonzero exit, never
/// swallowed or bounced to the generic usage text.
int option_error(const std::string& message) {
  std::fprintf(stderr, "foraygen: %s\n", message.c_str());
  return 2;
}

/// The documented Status-class → exit-code mapping (see the header
/// comment). Exit 1 (replay mismatch) and 2 (usage) never come from a
/// Status; everything that does goes through here.
int exit_code_for(const util::Status& st) {
  switch (st.code()) {
    case util::ErrorCode::kOk: return 0;
    case util::ErrorCode::kInvalidInput: return 3;
    case util::ErrorCode::kResourceExhausted:
    case util::ErrorCode::kDeadlineExceeded:
    case util::ErrorCode::kCancelled: return 4;
    case util::ErrorCode::kInternal: return 5;
    case util::ErrorCode::kIoError: return 6;
  }
  return 5;
}

/// Prints the failure and converts it to the documented exit code.
int fail_with(const util::Status& st) {
  std::fprintf(stderr, "%s\n", st.message().c_str());
  return exit_code_for(st);
}

util::Status unreadable(const std::string& path) {
  return util::Status::failure(util::ErrorCode::kIoError, "io", 0,
                               "cannot read " + path);
}

util::Status unwritable(const std::string& path) {
  return util::Status::failure(util::ErrorCode::kIoError, "io", 0,
                               "cannot write " + path);
}

/// Flags that only make sense for specific commands; everything not
/// listed here (--nexec, --seed, --engine, ...) configures the shared
/// pipeline and is accepted by every command.
bool flag_applies(const std::string& command, const std::string& flag) {
  struct Scoped {
    const char* flag;
    std::vector<const char*> commands;
  };
  static const std::vector<Scoped> kScoped = {
      {"--capacity", {"spm"}},
      // batch/sweep inherit the base compare-cache settings into every
      // grid point whose cache axis is undeclared.
      {"--compare-cache", {"spm", "batch", "sweep"}},
      {"--replay", {"spm", "batch", "sweep"}},
      {"--threads", {"batch", "sweep", "serve"}},
      {"--cache-dir", {"batch", "sweep", "serve"}},
      {"--no-cache", {"batch", "sweep", "serve"}},
      {"--cache-max-bytes", {"batch", "sweep", "serve"}},
      {"--max-points", {"serve"}},
      {"--static-admission", {"serve"}},
      {"--lint-first", {"sweep"}},
      {"--capacity-sweep", {"batch", "sweep"}},
      {"--json", {"batch", "lint"}},
      {"--energy-sweep", {"sweep"}},
      {"--cache-sweep", {"sweep"}},
      {"--algo-sweep", {"sweep"}},
      {"--replay-sweep", {"sweep"}},
      {"--spec", {"sweep"}},
      {"--ndjson", {"sweep"}},
      {"--resume", {"sweep"}},
  };
  for (const auto& s : kScoped) {
    if (flag == s.flag) {
      for (const char* c : s.commands) {
        if (command == c) return true;
      }
      return false;
    }
  }
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int cmd_annotate(const std::string& source) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(source, &diags);
  if (!prog) {
    return fail_with(util::Status::failure(util::ErrorCode::kInvalidInput,
                                           "frontend", std::move(diags)));
  }
  instrument::annotate_loops(prog.get());
  minic::PrintOptions opts;
  opts.annotate_checkpoints = true;
  std::fputs(minic::print_program(*prog, opts).c_str(), stdout);
  return 0;
}

int cmd_trace(const std::string& source, const sim::RunOptions& ropts) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(source, &diags);
  if (!prog) {
    return fail_with(util::Status::failure(util::ErrorCode::kInvalidInput,
                                           "frontend", std::move(diags)));
  }
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  sim::RunResult run = sim::run_program(*prog, &sink, ropts);
  if (!run.ok()) {
    return fail_with(run.status);
  }
  for (const auto& r : sink.records()) {
    std::printf("%s\n", trace::record_to_text(r).c_str());
  }
  return 0;
}

int cmd_stats(const core::PipelineResult& res,
              const core::FilterOptions& filter) {
  auto mix = core::compute_loop_mix(res.extractor->tree(), res.loop_sites,
                                    res.program->source_lines);
  std::printf("lines: %d\n", mix.lines);
  std::printf("loops executed: %d (for %.0f%%, while %.0f%%, do %.0f%%)\n",
              mix.total, mix.pct_for(), mix.pct_while(), mix.pct_do());

  auto analysis = staticforay::analyze(*res.program);
  auto conv = staticforay::analyze_pointer_conversion(*res.program);
  auto cs = staticforay::compute_conversion(res.model, analysis);
  auto cmp = staticforay::compare_baselines(res.model, analysis, conv);
  std::printf("FORAY model: %d refs over %d loops\n", cs.model_refs,
              cs.model_loops);
  std::printf("not in FORAY form statically: %.0f%% of loops, %.0f%% of "
              "refs\n",
              cs.pct_loops_not_foray(), cs.pct_refs_not_foray());
  std::printf("analyzable refs: %d plain static, %d with pointer "
              "conversion, %d with FORAY-GEN (%.2fx over conversion)\n",
              cmp.plain_static, cmp.with_conversion, cmp.foray_gen,
              cmp.foray_gain_over_conversion());

  auto behavior = core::compute_behavior(res.extractor->tree(), filter);
  auto bucket = [](const char* name, const core::BehaviorBucket& b,
                   const core::BehaviorBucket& t) {
    std::printf("%-7s %6llu refs (%s)  %10llu accesses (%s)  %8llu "
                "footprint (%s)\n",
                name, static_cast<unsigned long long>(b.refs),
                util::pct(static_cast<double>(b.refs),
                          static_cast<double>(t.refs)).c_str(),
                static_cast<unsigned long long>(b.accesses),
                util::pct(static_cast<double>(b.accesses),
                          static_cast<double>(t.accesses)).c_str(),
                static_cast<unsigned long long>(b.footprint),
                util::pct(static_cast<double>(b.footprint),
                          static_cast<double>(t.footprint)).c_str());
  };
  bucket("total", behavior.total, behavior.total);
  bucket("model", behavior.model, behavior.total);
  bucket("system", behavior.system, behavior.total);
  bucket("other", behavior.other, behavior.total);
  return 0;
}

/// One static bound as JSON: a number when finite, the string
/// "unbounded" otherwise (uint64 max would be lossy in double-backed
/// JSON parsers, and "unbounded" is what the human report prints too).
void lint_bound_json(util::JsonWriter& w, const char* name, uint64_t v) {
  if (v == staticforay::kUnbounded) {
    w.key(name).value("unbounded");
  } else {
    w.key(name).value(v);
  }
}

/// `foraygen lint`: the static checker over each job. Human report per
/// program, or one stable JSON document with --json. Exit 3 the moment
/// any program fails the frontend or carries a *proven* fault;
/// warnings-only programs are clean (exit 0) — the documented contract
/// that admission gating keys on the must-fault class, not on style.
int cmd_lint(const std::vector<driver::SweepJob>& jobs,
             const std::string& json_path) {
  const bool json = !json_path.empty();
  util::JsonWriter w;
  if (json) {
    w.begin_object();
    w.key("kind").value("lint");
    w.key("programs").begin_array();
  }
  bool failed = false;
  for (const driver::SweepJob& job : jobs) {
    staticforay::CheckReport rep;
    const util::Status st = staticforay::lint_source(job.source, &rep);
    if (!st.ok()) {
      failed = true;
      if (json) {
        w.begin_object();
        w.key("program").value(job.name);
        w.key("ok").value(false);
        w.key("error_class").value(st.code_name());
        w.key("phase").value(st.phase());
        w.key("error").value(st.message());
        w.end_object();
      } else {
        std::printf("== %s ==\n%s\n", job.name.c_str(),
                    st.message().c_str());
      }
      continue;
    }
    failed = failed || rep.must_fault();
    if (json) {
      w.begin_object();
      w.key("program").value(job.name);
      w.key("ok").value(!rep.must_fault());
      w.key("must_fault").value(rep.must_fault());
      w.key("diags").begin_array();
      for (const staticforay::CheckDiag& d : rep.diags) {
        w.begin_object();
        w.key("kind").value(staticforay::check_kind_name(d.kind));
        w.key("severity").value(staticforay::severity_name(d.severity));
        w.key("line").value(static_cast<int64_t>(d.line));
        w.key("node").value(static_cast<int64_t>(d.node_id));
        w.key("message").value(d.message);
        w.end_object();
      }
      w.end_array();
      w.key("cost").begin_object();
      lint_bound_json(w, "max_steps", rep.cost.max_steps);
      lint_bound_json(w, "max_records", rep.cost.max_records);
      w.key("min_steps").value(rep.cost.min_steps);
      w.key("min_records").value(rep.cost.min_records);
      w.key("exact").value(rep.cost.exact);
      w.end_object();
      w.end_object();
    } else {
      std::printf("== %s ==\n%s", job.name.c_str(), rep.str().c_str());
    }
  }
  if (json) {
    w.end_array();
    w.key("ok").value(!failed);
    w.end_object();
    if (json_path == "-") {
      std::printf("%s\n", w.take().c_str());
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) return fail_with(unwritable(json_path));
      out << w.take() << '\n';
      if (!out.flush()) return fail_with(unwritable(json_path));
    }
  }
  return failed ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const bool known_command =
      command == "model" || command == "emit" || command == "annotate" ||
      command == "trace" || command == "stats" || command == "hints" ||
      command == "run" || command == "profile" || command == "spm" ||
      command == "batch" || command == "sweep" || command == "lint" ||
      command == "serve";
  if (!known_command) {
    usage();
    return option_error("unknown command '" + command + "'");
  }
  // batch and serve have no program argument; sweep's and lint's are
  // optional (default: the whole benchsuite).
  const bool optional_path = command == "sweep" || command == "lint";
  const bool takes_path =
      command != "batch" && command != "serve" &&
      !(optional_path && (argc < 3 || util::starts_with(argv[2], "--")));
  if (takes_path && !optional_path && argc < 3) return usage();
  const std::string path = takes_path ? argv[2] : "";

  core::PipelineOptions opts;
  int threads = 1;
  driver::SweepSpec spec;
  std::string json_path;
  std::string ndjson_path;
  std::string resume_path;
  std::string cache_dir;
  if (const char* env = std::getenv("FORAY_CACHE_DIR")) cache_dir = env;
  bool no_cache = false;
  uint64_t cache_max_bytes = 0;
  uint64_t max_points = 4096;
  bool static_admission = false;
  bool lint_first = false;
  for (int i = takes_path ? 3 : 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!util::starts_with(arg, "--")) {
      return option_error(
          "unexpected argument '" + arg +
          (takes_path ? "' after the program path"
                      : "' (command '" + command +
                            "' takes no program argument)"));
    }
    if (!flag_applies(command, arg)) {
      return option_error("option '" + arg +
                          "' does not apply to command '" + command + "'");
    }
    auto next_value = [&](const char** out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    auto next_u64 = [&](uint64_t* out) {
      const char* s = nullptr;
      if (!next_value(&s)) return false;
      // strtoull silently wraps a leading '-' (so "--max-steps -1" would
      // become a ~1.8e19-step budget) and saturates out-of-range values
      // to ULLONG_MAX; both must be usage errors, not huge numbers.
      if (*s == '+' || *s == '-') return false;
      char* end = nullptr;
      errno = 0;
      *out = std::strtoull(s, &end, 10);
      return end != s && *end == '\0' && errno != ERANGE;
    };
    auto parse_axis = [&](const char* axis) -> int {
      const char* s = nullptr;
      if (!next_value(&s)) {
        return option_error("option '" + arg + "' requires a value");
      }
      util::Status st = spec.parse_axis(axis, s);
      if (!st.ok()) {
        return option_error(arg + (": " + st.message()));
      }
      return 0;
    };
    uint64_t v = 0;
    if (arg == "--nexec") {
      if (!next_u64(&opts.filter.min_exec)) {
        return option_error("option '--nexec' requires a number");
      }
    } else if (arg == "--nloc") {
      if (!next_u64(&opts.filter.min_locations)) {
        return option_error("option '--nloc' requires a number");
      }
    } else if (arg == "--seed") {
      if (!next_u64(&opts.run.rng_seed)) {
        return option_error("option '--seed' requires a number");
      }
    } else if (arg == "--engine") {
      const char* engine = nullptr;
      if (!next_value(&engine)) {
        return option_error("option '--engine' requires a value");
      }
      if (!std::strcmp(engine, "ast")) {
        opts.run.engine = sim::Engine::Ast;
      } else if (!std::strcmp(engine, "bytecode")) {
        opts.run.engine = sim::Engine::Bytecode;
      } else if (!std::strcmp(engine, "jit")) {
        opts.run.engine = sim::Engine::Jit;
      } else {
        return option_error(std::string("unknown engine '") + engine +
                            "' (want ast, bytecode or jit)");
      }
    } else if (arg == "--offline") {
      opts.offline = true;
    } else if (arg == "--dump-jit") {
      jit::set_dump_jit(true);
    } else if (arg == "--shards") {
      if (!next_u64(&v) || v == 0) {
        return option_error("option '--shards' requires a positive number");
      }
      opts.profile_shards = static_cast<int>(v);
    } else if (arg == "--pipeline") {
      opts.profile_pipeline = true;
    } else if (arg == "--timeshards") {
      if (!next_u64(&v) || v == 0) {
        return option_error(
            "option '--timeshards' requires a positive number");
      }
      opts.profile_timeshards = static_cast<int>(v);
    } else if (arg == "--compare-cache") {
      opts.spm.compare_cache = true;
    } else if (arg == "--replay") {
      opts.with_replay = true;
    } else if (arg == "--json") {
      const char* s = nullptr;
      if (!next_value(&s)) {
        return option_error("option '--json' requires a path");
      }
      json_path = s;
    } else if (arg == "--ndjson") {
      const char* s = nullptr;
      if (!next_value(&s)) {
        return option_error("option '--ndjson' requires a path (or -)");
      }
      ndjson_path = s;
    } else if (arg == "--resume") {
      const char* s = nullptr;
      if (!next_value(&s)) {
        return option_error("option '--resume' requires a journal path");
      }
      resume_path = s;
    } else if (arg == "--max-steps") {
      if (!next_u64(&opts.run.budget.max_steps)) {
        return option_error(
            "option '--max-steps' requires a number (0 = unlimited)");
      }
    } else if (arg == "--max-records") {
      if (!next_u64(&opts.run.budget.max_records)) {
        return option_error(
            "option '--max-records' requires a number (0 = unlimited)");
      }
    } else if (arg == "--timeout") {
      const char* s = nullptr;
      if (!next_value(&s)) {
        return option_error("option '--timeout' requires seconds");
      }
      char* end = nullptr;
      const double secs = std::strtod(s, &end);
      if (end == s || *end != '\0' || !(secs >= 0.0)) {
        return option_error(
            "option '--timeout' requires non-negative seconds");
      }
      opts.run.budget.timeout_seconds = secs;
    } else if (arg == "--fault") {
      const char* s = nullptr;
      if (!next_value(&s)) {
        return option_error("option '--fault' requires a site spec");
      }
      util::Status st = util::fault::configure(s);
      if (!st.ok()) {
        return option_error("--fault: " + st.message());
      }
    } else if (arg == "--spec") {
      const char* s = nullptr;
      if (!next_value(&s)) {
        return option_error("option '--spec' requires a path");
      }
      std::string text;
      if (!read_file(s, &text)) {
        return option_error(std::string("cannot read spec file ") + s);
      }
      util::Status st = spec.parse_file(text);
      if (!st.ok()) {
        return option_error(std::string(s) + ": " + st.message());
      }
    } else if (arg == "--capacity") {
      // 0 is allowed: the degenerate no-SPM report is a supported probe.
      if (!next_u64(&v)) {
        return option_error("option '--capacity' requires a byte count");
      }
      opts.spm.dse.spm_capacity = static_cast<uint32_t>(v);
    } else if (arg == "--threads") {
      if (!next_u64(&v)) {
        return option_error("option '--threads' requires a number");
      }
      threads = static_cast<int>(v);
    } else if (arg == "--cache-dir") {
      const char* s = nullptr;
      if (!next_value(&s) || *s == '\0') {
        return option_error("option '--cache-dir' requires a directory");
      }
      cache_dir = s;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--cache-max-bytes") {
      if (!next_u64(&cache_max_bytes)) {
        return option_error(
            "option '--cache-max-bytes' requires a byte count "
            "(0 = unbounded)");
      }
    } else if (arg == "--static-admission") {
      static_admission = true;
    } else if (arg == "--lint-first") {
      lint_first = true;
    } else if (arg == "--max-points") {
      if (!next_u64(&max_points)) {
        return option_error(
            "option '--max-points' requires a number (0 = unlimited)");
      }
    } else if (arg == "--capacity-sweep") {
      if (int rc = parse_axis("capacity")) return rc;
    } else if (arg == "--energy-sweep") {
      if (int rc = parse_axis("energy")) return rc;
    } else if (arg == "--cache-sweep") {
      if (int rc = parse_axis("cache")) return rc;
    } else if (arg == "--algo-sweep") {
      if (int rc = parse_axis("algorithm")) return rc;
    } else if (arg == "--replay-sweep") {
      if (int rc = parse_axis("replay")) return rc;
    } else {
      return option_error("unknown option '" + arg + "'");
    }
  }

  // The model cache: explicit --cache-dir (or FORAY_CACHE_DIR) enables
  // it for batch/sweep; serve always gets at least the in-memory layer —
  // reusing Phase I across requests is the point of serving.
  std::unique_ptr<driver::ModelCache> cache;
  if (!no_cache && (!cache_dir.empty() || command == "serve")) {
    cache = std::make_unique<driver::ModelCache>(driver::ModelCacheOptions{
        cache_dir, /*memory=*/true, cache_max_bytes});
  }
  auto print_cache_stats = [&cache] {
    if (cache == nullptr) return;
    const driver::ModelCache::Stats s = cache->stats();
    std::fprintf(
        stderr,
        "foraygen: model cache: %llu hit(s) (%llu in-memory), "
        "%llu miss(es), %llu rejected, %llu store(s), %llu store "
        "failure(s), %llu evicted\n",
        static_cast<unsigned long long>(s.hits),
        static_cast<unsigned long long>(s.memory_hits),
        static_cast<unsigned long long>(s.misses),
        static_cast<unsigned long long>(s.rejected),
        static_cast<unsigned long long>(s.stores),
        static_cast<unsigned long long>(s.store_failures),
        static_cast<unsigned long long>(s.evictions));
  };

  if (command == "lint") {
    std::vector<driver::SweepJob> jobs;
    if (!path.empty()) {
      std::string source;
      if (!read_file(path, &source)) {
        return fail_with(unreadable(path));
      }
      jobs.push_back(driver::SweepJob{path, source});
    } else {
      jobs = driver::SweepDriver::benchsuite_jobs();
    }
    return cmd_lint(jobs, json_path);
  }

  if (command == "serve") {
#if !defined(_WIN32)
    // A client that vanishes mid-response must surface as a write error
    // on the response stream (which cancels that request), not as a
    // process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
#endif
    driver::ServeOptions svopts;
    svopts.threads = threads;
    svopts.pipeline = opts;
    svopts.max_points = max_points;
    svopts.model_cache = cache.get();
    svopts.static_admission = static_admission;
    util::Status st = driver::serve_loop(std::cin, std::cout, svopts);
    print_cache_stats();
    if (!st.ok()) return fail_with(st);
    return 0;
  }

  if (command == "sweep") {
    driver::SweepOptions sopts;
    sopts.threads = threads;
    sopts.pipeline = opts;
    sopts.spec = spec;
    sopts.model_cache = cache.get();
    sopts.lint_first = lint_first;
    driver::SweepDriver sweep(sopts);
    std::vector<driver::SweepJob> jobs;
    if (!path.empty()) {
      std::string source;
      if (!read_file(path, &source)) {
        return fail_with(unreadable(path));
      }
      jobs.push_back(driver::SweepJob{path, source});
    } else {
      jobs = driver::SweepDriver::benchsuite_jobs();
    }

    if (!resume_path.empty() && ndjson_path.empty()) {
      return option_error("option '--resume' requires --ndjson");
    }

    if (!ndjson_path.empty()) {
      // Resume: parse the prior journal BEFORE opening the output —
      // the two paths are usually the same file, and ofstream::open
      // truncates.
      driver::SweepCheckpoint checkpoint;
      const driver::SweepCheckpoint* resume = nullptr;
      if (!resume_path.empty()) {
        std::string journal;
        if (!read_file(resume_path, &journal)) {
          return fail_with(unreadable(resume_path));
        }
        util::Status st = sweep.parse_resume(journal, &checkpoint);
        if (!st.ok()) return fail_with(st);
        resume = &checkpoint;
      }
      // Streaming mode: the grid is written point by point in
      // deterministic order while it runs; nothing is retained.
      std::ofstream file;
      std::ostream* out = &std::cout;
      if (ndjson_path != "-") {
        file.open(ndjson_path, std::ios::binary);
        if (!file) {
          return fail_with(unwritable(ndjson_path));
        }
        out = &file;
      }
      util::Status st = sweep.run_ndjson(jobs, *out, resume);
      print_cache_stats();
      if (!st.ok()) {
        // A transform-replay counter mismatch is the analysis-negative
        // outcome (exit 1), not an error class.
        if (st.phase() == "replay") {
          std::fprintf(stderr, "%s\n", st.message().c_str());
          return 1;
        }
        return fail_with(st);
      }
      return 0;
    }

    auto report = sweep.run(jobs);
    print_cache_stats();
    std::fputs(report.table().c_str(), stdout);
    std::printf("\n-- Pareto frontier (SPM bytes used -> nJ saved) --\n");
    auto print_frontier = [&](const std::string& label,
                              const std::vector<driver::ParetoPoint>& pts) {
      std::printf("%s:", label.c_str());
      for (const auto& p : pts) {
        std::printf(" %lluB=%.1fnJ",
                    static_cast<unsigned long long>(p.bytes_used),
                    p.saved_nj);
      }
      std::printf("\n");
    };
    for (size_t j = 0; j < report.programs.size(); ++j) {
      print_frontier(report.programs[j], report.pareto(j));
    }
    if (report.programs.size() > 1) {
      print_frontier("(aggregate)", report.pareto_aggregate());
    }
    int rc = 0;
    // A Phase I failure is copied into every grid point of its program;
    // report each distinct (program, message) once, not once per point.
    std::string last_error;
    for (const auto& item : report.items) {
      if (!item.status.ok()) {
        if (rc == 0 || rc == 1) rc = exit_code_for(item.status);
        std::string error = item.program + ": " + item.status.message();
        if (error != last_error) {
          std::fprintf(stderr, "%s\n", error.c_str());
          last_error = std::move(error);
        }
      } else if (item.replay_ran && !item.replay.matches()) {
        std::fprintf(stderr, "%s @%uB: transform-replay mismatch\n",
                     item.program.c_str(), item.point.capacity_bytes);
        if (rc == 0) rc = 1;
      }
    }
    return rc;
  }

  if (command == "batch") {
    // batch == a capacity-only sweep over the benchsuite (every other
    // axis inherits the pipeline options), with a table + single-document
    // JSON report instead of the sweep's NDJSON stream.
    driver::SweepOptions sopts;
    sopts.threads = threads;
    sopts.spec.capacities = spec.capacities;
    sopts.pipeline = opts;
    sopts.model_cache = cache.get();
    driver::SweepDriver batch(sopts);
    auto report = batch.run(driver::SweepDriver::benchsuite_jobs());
    print_cache_stats();
    std::fputs(report.table().c_str(), stdout);
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        return fail_with(unwritable(json_path));
      }
      out << report.to_json() << "\n";
    }
    for (const auto& item : report.items) {
      if (!item.status.ok()) {
        std::fprintf(stderr, "%s: %s\n", item.program.c_str(),
                     item.status.message().c_str());
        return exit_code_for(item.status);
      }
      if (item.replay_ran && !item.replay.matches()) {
        std::fprintf(stderr, "%s @%uB: transform-replay mismatch\n",
                     item.program.c_str(), item.point.capacity_bytes);
        return 1;
      }
    }
    return 0;
  }

  std::string source;
  if (!read_file(path, &source)) {
    return fail_with(unreadable(path));
  }

  if (command == "annotate") return cmd_annotate(source);
  if (command == "trace") return cmd_trace(source, opts.run);

  if (command == "spm") {
    opts.with_spm = true;
    driver::Session session(path, source, driver::SessionOptions{opts});
    if (!session.run().ok()) {
      return fail_with(session.status());
    }
    const auto& res = session.result();
    std::printf("model: %zu reference(s), %zu buffer candidate(s)\n",
                res.model.refs.size(), res.spm.candidates.size());
    std::fputs(session.spm_report_text().c_str(), stdout);
    if (res.replay_ran && !res.replay.matches()) {
      std::fprintf(stderr,
                   "replay: simulated traffic of the transformed program "
                   "diverges from the analytic counters\n");
      return 1;
    }
    return 0;
  }

  auto res = core::run_pipeline(source, opts);
  if (!res.ok()) {
    return fail_with(res.status);
  }

  if (command == "run") {
    std::fputs(res.run.output.c_str(), stdout);
    std::printf("[exit %d, %llu steps, %llu accesses]\n", res.run.exit_code,
                static_cast<unsigned long long>(res.run.steps),
                static_cast<unsigned long long>(res.run.accesses));
    return 0;
  }
  if (command == "profile") {
    const auto& ex = *res.extractor;
    std::printf("trace records: %llu (%llu accesses, %llu checkpoints)\n",
                static_cast<unsigned long long>(res.trace_records),
                static_cast<unsigned long long>(ex.accesses_processed()),
                static_cast<unsigned long long>(ex.checkpoints_processed()));
    std::printf("loop tree: %d loop node(s), %d reference(s)\n",
                ex.tree().loop_node_count(), ex.tree().ref_node_count());
    std::printf("analyzer state: %zu bytes\n", ex.state_bytes());
    std::printf("model: %zu reference(s) survive the Step 4 filter\n",
                res.model.refs.size());
    if (res.shard_report.shards_requested > 1) {
      std::printf("shards: %d requested, %d used, balance %.2f\n",
                  res.shard_report.shards_requested,
                  res.shard_report.shards_used, res.shard_report.balance);
    }
    if (res.timeshard_report.slices_requested > 1) {
      const auto& t = res.timeshard_report;
      std::printf("timeshards: %d requested, %d used; refs %llu adopted, "
                  "%llu composed, %llu rescanned (%llu rescan pass(es))\n",
                  t.slices_requested, t.slices_used,
                  static_cast<unsigned long long>(t.refs_adopted),
                  static_cast<unsigned long long>(t.refs_composed),
                  static_cast<unsigned long long>(t.refs_rescanned),
                  static_cast<unsigned long long>(t.rescan_passes));
    }
    return 0;
  }
  if (command == "model") {
    std::printf("%zu references (of %d candidates) in the FORAY model:\n\n",
                res.model.refs.size(), res.model.build_stats.total_refs);
    std::fputs(res.foray_paper_style.c_str(), stdout);
    return 0;
  }
  if (command == "emit") {
    std::fputs(res.foray_source.c_str(), stdout);
    return 0;
  }
  if (command == "stats") return cmd_stats(res, opts.filter);
  if (command == "hints") {
    auto hints = core::compute_inline_hints(res.model, res.loop_sites);
    if (hints.empty()) {
      std::printf("no duplication hints\n");
      return 0;
    }
    for (const auto& h : hints) {
      std::printf("function '%s': %d contexts, patterns %s\n",
                  h.func_name.c_str(), h.contexts,
                  h.patterns_differ ? "differ" : "match");
      for (const auto& d : h.details) std::printf("  %s\n", d.c_str());
    }
    return 0;
  }
  return usage();
}
